(** Seeded chaos schedules over the full protocol stack.

    One chaos run builds a fresh line network of [n_hops] MoChannels,
    installs a fault {!scenario} (fault plans on the links, plus
    scripted misbehaviour at precise protocol points), drives one
    recoverable multi-hop payment through it on the discrete-event
    clock, and then checks the {!Invariant}s: funds conserved, every
    lock resolved, no double punishment. Everything derives from the
    integer seed — a failing schedule replays exactly.

    The scenarios map to the paper's adversary model:

    - [Happy]: no faults; the recoverable engine must behave like the
      plain one.
    - [Flaky severity]: every link drops/delays/duplicates/withholds
      per a profile drawn from the seed. The driver's retransmission
      machinery absorbs transient faults; a link that dies outright
      escalates to a KES dispute.
    - [Silent_hop i]: hop [i]'s channel goes dark before the payment,
      so its lock session times out. The sender disputes that channel
      through the KES and cancels the locks already placed upstream.
    - [Silent_receiver]: the receiver takes the locks and never
      releases the witness. Every hop waits out its cascade timer and
      cancels; the receiver's own channel ends in a pre-lock dispute.
    - [Cheating_hop i]: once hop [i] is locked, its payee goes dark
      {e and} broadcasts a stale commitment. The watchtower must catch
      it and settle with priority before the dispute path even runs. *)

module Ch = Monet_channel.Channel
module Driver = Monet_channel.Driver
module Watchtower = Monet_channel.Watchtower
module Graph = Monet_net.Graph
module Router = Monet_net.Router
module Payment = Monet_net.Payment
module Plan = Monet_fault.Plan
module Tp = Monet_sig.Two_party

type scenario =
  | Happy
  | Flaky of float  (** severity in [0,1] *)
  | Silent_hop of int  (** this hop's channel is dark from the start *)
  | Silent_receiver
  | Cheating_hop of int  (** goes dark after locking + broadcasts stale state *)

let scenario_label = function
  | Happy -> "happy"
  | Flaky s -> Printf.sprintf "flaky(%.2f)" s
  | Silent_hop i -> Printf.sprintf "silent-hop(%d)" i
  | Silent_receiver -> "silent-receiver"
  | Cheating_hop i -> Printf.sprintf "cheating-hop(%d)" i

type outcome = {
  o_label : string;
  o_delivered : bool;
  o_fates : Payment.hop_fate array;
  o_disputes : int;
  o_punishments : int;
  o_timeouts : int; (* channel sessions that exhausted their retries *)
  o_retransmits : int;
  o_faults_fired : int; (* link/party faults that actually triggered *)
  o_violations : string list; (* [] = all invariants held *)
}

(* Small-parameter configuration: the soak cares about protocol-level
   interleavings, not cryptographic work factors. *)
let chaos_cfg =
  { Ch.default_config with
    Ch.vcof_reps = Some 2; ring_size = 3; n_escrowers = 3; escrow_threshold = 2 }

(* Shared end-of-run bookkeeping for [run] and [crash_run] (one copy,
   so the two soak paths can never drift): collect the settlements the
   payment recorded, give the (possibly restored) tower one last pass
   absorbing anything it catches, and check every invariant against
   the graph. *)
let finalize_checks (t : Graph.t) ~(edge_ids : int array)
    ~(channel_of : int -> Ch.channel) ~(tower : Watchtower.t)
    ~(fates : Payment.hop_fate array) ~(wealth_before : (int * int) list)
    ~(path : Router.hop list) ~(amount : int) ~(delivered : bool) :
    string list =
  let settled = ref [] in
  Array.iteri
    (fun i fate ->
      match fate with
      | Payment.Hop_disputed p | Payment.Hop_punished p ->
          settled := (edge_ids.(i), p) :: !settled
      | Payment.Hop_pending | Payment.Hop_unlocked | Payment.Hop_cancelled ->
          ())
    fates;
  let final = Watchtower.tick tower in
  List.iter
    (fun ((ch : Ch.channel), p) ->
      Array.iteri
        (fun i _ ->
          if (channel_of i).Ch.id = ch.Ch.id then
            settled := (edge_ids.(i), p) :: !settled)
        edge_ids)
    final.Watchtower.punished;
  let violations = ref (Invariant.check t ~settled:!settled) in
  let add v = violations := !violations @ [ v ] in
  (* When everything stayed off-chain, conservation must hold down to
     the fee level. A hop punished by the *final* tower pass above
     settled on-chain too, even though the fates array predates that
     pass — the per-run copies of this logic used to decide
     "off-chain" from the fates alone and would have demanded
     fee-level conservation after such a late punishment. *)
  let all_off_chain =
    final.Watchtower.punished = []
    && Array.for_all
         (function
           | Payment.Hop_pending | Payment.Hop_unlocked
           | Payment.Hop_cancelled ->
               true
           | Payment.Hop_disputed _ | Payment.Hop_punished _ -> false)
         fates
  in
  if all_off_chain then
    List.iter add
      (Invariant.check_payment_delta t ~wealth_before ~path ~amount ~delivered);
  (* Tower bookkeeping reconciles with the fates. *)
  let n_open = List.length (List.filter Graph.is_open (Graph.edge_list t)) in
  let n_punished =
    Array.fold_left
      (fun acc -> function Payment.Hop_punished _ -> acc + 1 | _ -> acc)
      0 fates
    + List.length final.Watchtower.punished
  in
  List.iter add
    (Monet_fault.Invariant.check_tower
       ~watched:(Watchtower.watched_count tower) ~open_channels:n_open
       ~counted:tower.Watchtower.punishments ~observed:n_punished);
  !violations

(** Run one seeded schedule. [Error] means the harness itself could not
    set the network up or the payment hit a non-timeout protocol error —
    both are harness bugs, not tolerated faults. *)
let run ?(cfg = chaos_cfg) ?(n_hops = 3) ?(amount = 25) ~(seed : int)
    (scenario : scenario) : (outcome, string) result =
  if n_hops < 1 then invalid_arg "Chaos.run: n_hops must be >= 1";
  (match scenario with
  | (Silent_hop i | Cheating_hop i) when i < 0 || i >= n_hops ->
      invalid_arg "Chaos.run: scenario hop out of range"
  | _ -> ());
  let g = Monet_hash.Drbg.of_int seed in
  let t = Graph.create ~cfg g in
  let nodes =
    Array.init (n_hops + 1) (fun i ->
        Graph.add_node t ~name:(Printf.sprintf "n%d" i))
  in
  Array.iter (fun id -> Graph.fund_node t id ~amount:2_000) nodes;
  (* Intermediaries charge a small forwarding fee, so every schedule
     also exercises fee-adjusted lock amounts and the fee-level
     conservation check below. *)
  for i = 1 to n_hops - 1 do
    Graph.set_fee t nodes.(i) ~fee:1
  done;
  (* Line topology. Two plain updates per channel give the punishment
     path genuinely old states (0 and 1) below the latest. *)
  let rec build i acc =
    if i >= n_hops then Ok (List.rev acc)
    else
      match
        Graph.open_channel t ~left:nodes.(i) ~right:(nodes.(i + 1))
          ~bal_left:500 ~bal_right:500
      with
      | Error e -> Error (Printf.sprintf "open hop %d: %s" i e)
      | Ok (eid, _) -> (
          let ch = Graph.channel_exn (Graph.edge t eid) in
          match (Ch.update ch ~amount_from_a:10, Ch.update ch ~amount_from_a:10) with
          | Error e, _ | _, Error e ->
              Error
                (Printf.sprintf "update hop %d: %s" i (Ch.error_to_string e))
          | Ok _, Ok _ -> build (i + 1) (eid :: acc))
  in
  match build 0 [] with
  | Error e -> Error e
  | Ok edge_ids -> (
      let edge_ids = Array.of_list edge_ids in
      let channel_of i = Graph.channel_exn (Graph.edge t edge_ids.(i)) in
      (* Scheduled transport on a shared clock + per-link fault plans;
         establishment and the warm-up updates above ran faultless. *)
      let clock = Monet_dsim.Clock.create () in
      let latency = Monet_dsim.Latency.Fixed 5.0 in
      let plans =
        Array.mapi
          (fun i eid ->
            let pg = Monet_hash.Drbg.split g (Printf.sprintf "plan/%d" eid) in
            let plan =
              match scenario with
              | Flaky severity ->
                  Plan.make ~profile:(Plan.flaky_profile ~severity pg) pg
              | Silent_hop j when i = j ->
                  let p = Plan.none () in
                  Plan.kill p;
                  p
              | Happy | Silent_hop _ | Silent_receiver | Cheating_hop _ ->
                  Plan.none ()
            in
            let ch = channel_of i in
            ch.Ch.transport <-
              Driver.Scheduled
                { clock; latency;
                  g = Monet_hash.Drbg.split g (Printf.sprintf "lat/%d" eid) };
            Ch.set_faults ch
              (Some
                 (Ch.make_faults ~deadline_ms:100.0 ~max_retries:3 ~backoff:2.0
                    plan));
            plan)
          edge_ids
      in
      (* Every payer outsources surveillance of its channel. On this
         line topology the payer of hop i is always party A. *)
      let tower = Watchtower.create () in
      Array.iteri
        (fun i _ -> Watchtower.watch tower (channel_of i) ~victim:Tp.Alice)
        edge_ids;
      let on_locked j =
        match scenario with
        | Silent_receiver when j = n_hops - 1 -> Plan.kill plans.(j)
        | Cheating_hop i when j = i -> (
            (* The hop's payee stops responding and broadcasts the
               stale state-1 commitment (with the victim's leaked old
               witness, as the threat model allows). *)
            Plan.kill plans.(i);
            let ch = channel_of i in
            let victim_old = Ch.my_witness_at ch.Ch.a ~state:1 in
            match
              Ch.submit_old_state ch ~cheater:Tp.Bob ~state:1
                ~victim_old_wit:victim_old
            with
            | Ok _ -> ()
            | Error e ->
                failwith ("chaos: cheat broadcast: " ^ Ch.error_to_string e))
        | Happy | Flaky _ | Silent_hop _ | Silent_receiver | Cheating_hop _ ->
            ()
      in
      let receiver_cooperates =
        match scenario with Silent_receiver -> false | _ -> true
      in
      match
        Router.find_path t ~src:nodes.(0) ~dst:nodes.(n_hops) ~amount
      with
      | Error e -> Error ("routing: " ^ e)
      | Ok path -> (
          let wealth_before =
            Array.to_list
              (Array.map (fun id -> (id, Invariant.wealth t id)) nodes)
          in
          match
            Payment.execute_recoverable t ~path ~amount ~receiver_cooperates
              ~tower ~clock ~on_locked ~base_timer:2_000 ~timer_delta:500 ()
          with
          | Error e -> Error ("payment: " ^ Payment.error_to_string e)
          | Ok r ->
              let violations =
                ref
                  (finalize_checks t ~edge_ids ~channel_of ~tower
                     ~fates:r.Payment.r_fates ~wealth_before ~path ~amount
                     ~delivered:r.Payment.r_delivered)
              in
              let retransmits = ref 0 in
              Array.iteri
                (fun i _ ->
                  match (channel_of i).Ch.faults with
                  | Some f -> retransmits := !retransmits + f.Ch.f_retransmits
                  | None -> ())
                edge_ids;
              Ok
                {
                  o_label = scenario_label scenario;
                  o_delivered = r.Payment.r_delivered;
                  o_fates = r.Payment.r_fates;
                  o_disputes = r.Payment.r_disputes;
                  o_punishments = r.Payment.r_punishments;
                  o_timeouts = r.Payment.r_timeouts;
                  o_retransmits = !retransmits;
                  o_faults_fired =
                    Array.fold_left
                      (fun acc p -> acc + Plan.faults_fired p)
                      0 plans;
                  o_violations = !violations;
                }))

(* --- crash–restart schedules ---------------------------------------
   The durability counterpart of the scenarios above: kill one party of
   one hop mid-payment — either after a scheduled number of deliveries
   ([Kill_plan], a kill -9 between protocol steps) or at an exact byte
   offset inside a journal append ([Kill_failpoint], a kill -9 *during*
   the write, leaving a torn record on disk) — restart it from its
   journal after some simulated downtime, and require every
   conservation invariant to hold regardless of where the knife
   landed. *)

module Backend = Monet_store.Backend
module Recovery = Monet_channel.Recovery

type crash_mode =
  | Kill_plan of {
      kp_hop : int;
      kp_party_a : bool;
      kp_after : int;  (** die after this many link deliveries *)
      kp_down_ms : float;
    }
  | Kill_failpoint of {
      kf_hop : int;
      kf_party_a : bool;
      kf_cut : int;  (** die after this many durably journaled bytes *)
      kf_down_ms : float;
    }

let crash_label = function
  | Kill_plan { kp_hop; kp_party_a; kp_after; kp_down_ms } ->
      Printf.sprintf "kill-plan(hop=%d,%s,after=%d,down=%.0fms)" kp_hop
        (if kp_party_a then "a" else "b")
        kp_after kp_down_ms
  | Kill_failpoint { kf_hop; kf_party_a; kf_cut; kf_down_ms } ->
      Printf.sprintf "kill-failpoint(hop=%d,%s,cut=%d,down=%.0fms)" kf_hop
        (if kf_party_a then "a" else "b")
        kf_cut kf_down_ms

type crash_outcome = {
  c_label : string;
  c_delivered : bool;
  c_recoveries : int;  (** successful journal recoveries this run *)
  c_resumed : int;  (** recoveries that resumed an in-flight update *)
  c_aborted : int;  (** recoveries that abandoned an in-flight update *)
  c_torn : int;  (** torn journal tails detected (and truncated) *)
  c_replayed : int;  (** journal records replayed across recoveries *)
  c_disputes : int;
  c_punishments : int;
  c_violations : string list;  (** [] = all invariants held *)
}

(** Run one seeded kill/restart schedule: line network, one multi-hop
    payment, one party of [crash_mode]'s hop journaled to (simulated)
    disk and killed per the mode, then recovered by the driver's
    restart hook. The tower's state is additionally round-tripped
    through {!Watchtower.save}/{!Watchtower.restore} before its final
    pass, so every schedule also proves punishment survives a tower
    restart. *)
let crash_run ?(cfg = chaos_cfg) ?(n_hops = 3) ?(amount = 25) ~(seed : int)
    (mode : crash_mode) : (crash_outcome, string) result =
  if n_hops < 1 then invalid_arg "Chaos.crash_run: n_hops must be >= 1";
  let hop, down_ms =
    match mode with
    | Kill_plan { kp_hop; kp_down_ms; _ } -> (kp_hop, kp_down_ms)
    | Kill_failpoint { kf_hop; kf_down_ms; _ } -> (kf_hop, kf_down_ms)
  in
  if hop < 0 || hop >= n_hops then
    invalid_arg "Chaos.crash_run: crash hop out of range";
  let g = Monet_hash.Drbg.of_int seed in
  let t = Graph.create ~cfg g in
  let nodes =
    Array.init (n_hops + 1) (fun i ->
        Graph.add_node t ~name:(Printf.sprintf "n%d" i))
  in
  Array.iter (fun id -> Graph.fund_node t id ~amount:2_000) nodes;
  for i = 1 to n_hops - 1 do
    Graph.set_fee t nodes.(i) ~fee:1
  done;
  let rec build i acc =
    if i >= n_hops then Ok (List.rev acc)
    else
      match
        Graph.open_channel t ~left:nodes.(i) ~right:(nodes.(i + 1))
          ~bal_left:500 ~bal_right:500
      with
      | Error e -> Error (Printf.sprintf "open hop %d: %s" i e)
      | Ok (eid, _) -> (
          let ch = Graph.channel_exn (Graph.edge t eid) in
          match (Ch.update ch ~amount_from_a:10, Ch.update ch ~amount_from_a:10) with
          | Error e, _ | _, Error e ->
              Error
                (Printf.sprintf "update hop %d: %s" i (Ch.error_to_string e))
          | Ok _, Ok _ -> build (i + 1) (eid :: acc))
  in
  match build 0 [] with
  | Error e -> Error e
  | Ok edge_ids -> (
      let edge_ids = Array.of_list edge_ids in
      let channel_of i = Graph.channel_exn (Graph.edge t edge_ids.(i)) in
      let clock = Monet_dsim.Clock.create () in
      let latency = Monet_dsim.Latency.Fixed 5.0 in
      let plans =
        Array.mapi
          (fun i eid ->
            let pg = Monet_hash.Drbg.split g (Printf.sprintf "plan/%d" eid) in
            let plan =
              match mode with
              | Kill_plan { kp_hop; kp_party_a; kp_after; kp_down_ms }
                when i = kp_hop ->
                  let m =
                    Plan.Restart { r_after = kp_after; r_down_ms = kp_down_ms }
                  in
                  if kp_party_a then Plan.make ~mode_a:m pg
                  else Plan.make ~mode_b:m pg
              | Kill_plan _ | Kill_failpoint _ -> Plan.make pg
            in
            let ch = channel_of i in
            ch.Ch.transport <-
              Driver.Scheduled
                { clock; latency;
                  g = Monet_hash.Drbg.split g (Printf.sprintf "lat/%d" eid) };
            Ch.set_faults ch
              (Some
                 (Ch.make_faults ~deadline_ms:100.0 ~max_retries:3 ~backoff:2.0
                    plan));
            plan)
          edge_ids
      in
      let tower = Watchtower.create () in
      Array.iteri
        (fun i _ -> Watchtower.watch tower (channel_of i) ~victim:Tp.Alice)
        edge_ids;
      (* Journal both parties of the crash hop to their own (simulated)
         disks — the warm-up above is pre-history; the journals open on
         a checkpoint of the current state. *)
      let ch = channel_of hop in
      let recoveries = ref 0 and resumed = ref 0 and aborted = ref 0 in
      let torn = ref 0 and replayed = ref 0 in
      let recover_errors = ref [] in
      let attach suffix party =
        let backend = Backend.mem () in
        Recovery.attach ~backend
          ~name:(Printf.sprintf "hop%d-%s" hop suffix)
          ~reseed:(Monet_hash.Drbg.split g (Printf.sprintf "reseed/%s" suffix))
          party
      in
      let host_a = attach "a" ch.Ch.a and host_b = attach "b" ch.Ch.b in
      let on_restart host () =
        match Recovery.recover host ~env:ch.Ch.env with
        | Ok r ->
            incr recoveries;
            if r.Recovery.r_resumed then incr resumed;
            if r.Recovery.r_aborted then incr aborted;
            if r.Recovery.r_torn then incr torn;
            replayed := !replayed + r.Recovery.r_replayed;
            (* Surveillance survives the restart; re-registration is
               idempotent (dedup on channel id). *)
            Watchtower.watch tower ch ~victim:Tp.Alice
        | Error e ->
            recover_errors :=
              ("recovery failed: " ^ Ch.error_to_string e) :: !recover_errors
      in
      ch.Ch.store_a <- Some (Recovery.restart_hooks host_a ~on_restart:(on_restart host_a));
      ch.Ch.store_b <- Some (Recovery.restart_hooks host_b ~on_restart:(on_restart host_b));
      (match mode with
      | Kill_failpoint { kf_cut; kf_party_a; _ } ->
          (* Arm the torn-write failpoint on the target party's disk:
             the [kf_cut]-th journaled byte from here on is the last
             one that survives, and the "process" dies at that exact
             instant (before any reply can leave the party). *)
          let host = if kf_party_a then host_a else host_b in
          let backend = Recovery.backend host in
          Backend.set_failpoint backend ~after:kf_cut;
          Recovery.set_on_crash host (fun () ->
              Plan.crash_now plans.(hop) ~a:kf_party_a ~down_ms)
      | Kill_plan _ -> ());
      match
        Router.find_path t ~src:nodes.(0) ~dst:nodes.(n_hops) ~amount
      with
      | Error e -> Error ("routing: " ^ e)
      | Ok path -> (
          let wealth_before =
            Array.to_list
              (Array.map (fun id -> (id, Invariant.wealth t id)) nodes)
          in
          match
            Payment.execute_recoverable t ~path ~amount
              ~receiver_cooperates:true ~tower ~clock
              ~on_locked:(fun _ -> ())
              ~base_timer:2_000 ~timer_delta:500 ()
          with
          | Error e -> Error ("payment: " ^ Payment.error_to_string e)
          | Ok r ->
              let violations = ref [] in
              let add v = violations := !violations @ [ v ] in
              (* Tower restart: its final pass runs on a tower rebuilt
                 from serialized state, so a stale close discovered
                 *after* the tower restart must still be punished. *)
              let tower =
                let resolve id =
                  let found = ref None in
                  Array.iteri
                    (fun i _ ->
                      let c = channel_of i in
                      if c.Ch.id = id then found := Some c)
                    edge_ids;
                  !found
                in
                match Watchtower.restore ~resolve (Watchtower.save tower) with
                | Error e ->
                    add ("tower restore: " ^ Ch.error_to_string e);
                    tower
                | Ok t2 ->
                    if
                      Watchtower.watched_count t2
                      <> Watchtower.watched_count tower
                    then
                      add
                        (Printf.sprintf
                           "tower restore changed watched count (%d -> %d)"
                           (Watchtower.watched_count tower)
                           (Watchtower.watched_count t2));
                    t2
              in
              List.iter add
                (finalize_checks t ~edge_ids ~channel_of ~tower
                   ~fates:r.Payment.r_fates ~wealth_before ~path ~amount
                   ~delivered:r.Payment.r_delivered);
              List.iter add (List.rev !recover_errors);
              Ok
                {
                  c_label = crash_label mode;
                  c_delivered = r.Payment.r_delivered;
                  c_recoveries = !recoveries;
                  c_resumed = !resumed;
                  c_aborted = !aborted;
                  c_torn = !torn;
                  c_replayed = !replayed;
                  c_disputes = r.Payment.r_disputes;
                  c_punishments = r.Payment.r_punishments;
                  c_violations = !violations;
                }))

(** The kill/restart schedule mix for a seed: mostly plan-scheduled
    kills sweeping the crash point across the payment's delivery
    sequence, with every third seed instead tearing a journal append at
    a seed-dependent byte offset. Downtime alternates between "short
    enough to resume within the retry budget" and "long enough that the
    session times out and escalates". *)
let crash_mode_for ~(seed : int) ~(n_hops : int) : crash_mode =
  let hop = seed / 2 mod n_hops in
  let party_a = seed mod 2 = 0 in
  let down_ms = 120.0 +. (60.0 *. float_of_int (seed mod 7)) in
  if seed mod 3 = 2 then
    Kill_failpoint
      { kf_hop = hop; kf_party_a = party_a;
        kf_cut = 60 + (seed * 37 mod 2_400); kf_down_ms = down_ms }
  else
    Kill_plan
      { kp_hop = hop; kp_party_a = party_a; kp_after = seed / 3 mod 13;
        kp_down_ms = down_ms }

type crash_soak_summary = {
  cs_runs : int;
  cs_delivered : int;
  cs_recoveries : int;
  cs_resumed : int;
  cs_aborted : int;
  cs_torn : int;
  cs_replayed : int;
  cs_disputes : int;
  cs_punishments : int;
  cs_failures : (int * string * string) list; (* seed, label, problem *)
}

(** Run [runs] seeded kill/restart schedules and aggregate. Any
    invariant violation or harness error lands in [cs_failures] with
    its seed for exact replay via {!crash_run}. *)
let crash_soak ?(cfg = chaos_cfg) ?(n_hops = 3) ?(base_seed = 0)
    ~(runs : int) () : crash_soak_summary =
  let sum =
    ref
      { cs_runs = 0; cs_delivered = 0; cs_recoveries = 0; cs_resumed = 0;
        cs_aborted = 0; cs_torn = 0; cs_replayed = 0; cs_disputes = 0;
        cs_punishments = 0; cs_failures = [] }
  in
  for i = 0 to runs - 1 do
    let seed = base_seed + i in
    let mode = crash_mode_for ~seed ~n_hops in
    let s = !sum in
    (match crash_run ~cfg ~n_hops ~seed mode with
    | Error e ->
        sum :=
          { s with
            cs_runs = s.cs_runs + 1;
            cs_failures = (seed, crash_label mode, e) :: s.cs_failures }
    | Ok o ->
        let failures =
          match o.c_violations with
          | [] -> s.cs_failures
          | vs -> (seed, o.c_label, String.concat "; " vs) :: s.cs_failures
        in
        sum :=
          {
            cs_runs = s.cs_runs + 1;
            cs_delivered = s.cs_delivered + (if o.c_delivered then 1 else 0);
            cs_recoveries = s.cs_recoveries + o.c_recoveries;
            cs_resumed = s.cs_resumed + o.c_resumed;
            cs_aborted = s.cs_aborted + o.c_aborted;
            cs_torn = s.cs_torn + o.c_torn;
            cs_replayed = s.cs_replayed + o.c_replayed;
            cs_disputes = s.cs_disputes + o.c_disputes;
            cs_punishments = s.cs_punishments + o.c_punishments;
            cs_failures = failures;
          })
  done;
  { !sum with cs_failures = List.rev !sum.cs_failures }

(* --- soak: many seeded schedules, aggregated --- *)

type soak_summary = {
  s_runs : int;
  s_delivered : int;
  s_disputes : int;
  s_punishments : int;
  s_timeouts : int;
  s_retransmits : int;
  s_faults_fired : int;
  s_failures : (int * string * string) list; (* seed, label, problem *)
}

(** The soak's schedule mix for a given seed: mostly flaky links of
    seed-dependent severity, with the scripted adversarial scenarios
    interleaved so every soak provably exercises the dispute and
    punishment paths. *)
let scenario_for ~(seed : int) ~(n_hops : int) : scenario =
  match seed mod 8 with
  | 0 -> Happy
  | 1 -> Silent_hop (seed / 8 mod n_hops)
  | 2 -> Silent_receiver
  | 3 -> Cheating_hop (seed / 8 mod n_hops)
  | k -> Flaky (0.2 +. (0.15 *. float_of_int (k - 4)))

(** Run [runs] seeded schedules ([base_seed], [base_seed+1], ...) over
    [n_hops]-hop payments and aggregate. Any invariant violation or
    harness error lands in [s_failures] with its seed, so it can be
    replayed with {!run} directly. *)
let soak ?(cfg = chaos_cfg) ?(n_hops = 3) ?(base_seed = 0) ~(runs : int) () :
    soak_summary =
  let sum =
    ref
      { s_runs = 0; s_delivered = 0; s_disputes = 0; s_punishments = 0;
        s_timeouts = 0; s_retransmits = 0; s_faults_fired = 0; s_failures = [] }
  in
  for i = 0 to runs - 1 do
    let seed = base_seed + i in
    let scenario = scenario_for ~seed ~n_hops in
    let s = !sum in
    (match run ~cfg ~n_hops ~seed scenario with
    | Error e ->
        sum :=
          { s with
            s_runs = s.s_runs + 1;
            s_failures = (seed, scenario_label scenario, e) :: s.s_failures }
    | Ok o ->
        let failures =
          match o.o_violations with
          | [] -> s.s_failures
          | vs ->
              (seed, o.o_label, String.concat "; " vs) :: s.s_failures
        in
        sum :=
          {
            s_runs = s.s_runs + 1;
            s_delivered = s.s_delivered + (if o.o_delivered then 1 else 0);
            s_disputes = s.s_disputes + o.o_disputes;
            s_punishments = s.s_punishments + o.o_punishments;
            s_timeouts = s.s_timeouts + o.o_timeouts;
            s_retransmits = s.s_retransmits + o.o_retransmits;
            s_faults_fired = s.s_faults_fired + o.o_faults_fired;
            s_failures = failures;
          })
  done;
  { !sum with s_failures = List.rev !sum.s_failures }
