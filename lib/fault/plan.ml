(** Fault plans: a seeded description of how a channel's link and its
    two endpoints misbehave, consulted by {!Monet_channel.Driver} on
    every message send/delivery.

    The plan's grammar is the paper's adversary model made executable:

    - per-message {e link} faults — drop, delay (extra latency on top
      of the transport's sampled latency), duplicate, or {e withhold}
      (the direction dies and stays dead, so retransmissions provably
      fail and the deadline/escalation machinery must take over);
    - per-party modes — [Honest], [Crash_after n] (the party stops
      receiving and sending after the channel's [n]-th delivery:
      crash-stop), [Silent] (byzantine-silent: the party keeps
      receiving — and updating local state — but never replies), or
      [Restart] (crash–restart: kill-9 semantics like [Crash_after],
      but after [r_down_ms] of simulated downtime the driver calls
      {!revive} and the party rejoins, recovered from durable storage).

    How [Restart] composes with the existing modes:
    - while down, a [Restart] party is indistinguishable from
      [Crash_after]: deliveries to it are withheld (and {e not} marked
      as seen — an unprocessed message must stay deliverable after the
      restart), and its replies are muted;
    - after {!revive} the mode becomes [Honest]. What the party then
      does with retransmitted traffic is governed by its *recovered*
      dedup state: messages it durably processed before the crash are
      suppressed by the journal-restored seen-set, messages it never
      processed are delivered fresh — so a restarted party never
      re-applies a deduped message, and never loses one it had not yet
      applied;
    - [Silent] is orthogonal: a silent party is alive (it receives and
      mutates state), so it neither crashes nor restarts; combining
      the two on one party is meaningless and unsupported — the mode
      field holds exactly one behavior;
    - {!kill} remains permanent ([Crash_after 0] on both parties):
      scenarios that want a hop to go dark forever keep exactly the
      old semantics, while {!crash_now} is the restartable analogue
      used by the store's partial-write failpoint.

    All randomness comes from a {!Monet_hash.Drbg}, so a fault
    schedule is a pure function of its seed and the soak harness can
    replay any failing schedule. Decisions and outcomes are counted so
    tests can assert a fault actually fired. *)

type action =
  | Deliver
  | Drop  (** lose this message (transient; a retransmission may pass) *)
  | Delay of float  (** deliver with this many extra simulated ms *)
  | Duplicate  (** deliver twice (receiver-side dedup must cope) *)
  | Withhold  (** this direction of the link dies, permanently *)

type party_mode =
  | Honest
  | Crash_after of int
      (** crash-stop once the channel has seen this many deliveries *)
  | Silent  (** byzantine-silent: receives and mutates state, never replies *)
  | Restart of { r_after : int; r_down_ms : float }
      (** crash like [Crash_after r_after], then come back after
          [r_down_ms] simulated ms of downtime (the driver schedules
          {!revive} and the endpoint's recovery hook) *)

(** Per-message fault probabilities; [delay_ms] is the extra-latency
    range a [Delay] samples from. *)
type profile = {
  p_drop : float;
  p_delay : float;
  delay_ms : float * float;
  p_duplicate : float;
  p_withhold : float;
}

type stats = {
  mutable n_decisions : int;
  mutable n_dropped : int;
  mutable n_delayed : int;
  mutable n_duplicated : int;
  mutable n_withheld : int; (* messages swallowed by a dead link/party *)
}

type t = {
  g : Monet_hash.Drbg.t;
  profile : profile;
  mutable mode_a : party_mode;
  mutable mode_b : party_mode;
  mutable dead_to_a : bool; (* sticky withhold, per direction *)
  mutable dead_to_b : bool;
  mutable deliveries : int; (* successful deliveries, drives Crash_after *)
  stats : stats;
}

let fresh_stats () =
  { n_decisions = 0; n_dropped = 0; n_delayed = 0; n_duplicated = 0;
    n_withheld = 0 }

let honest_profile =
  { p_drop = 0.0; p_delay = 0.0; delay_ms = (0.0, 0.0); p_duplicate = 0.0;
    p_withhold = 0.0 }

let make ?(profile = honest_profile) ?(mode_a = Honest) ?(mode_b = Honest)
    (g : Monet_hash.Drbg.t) : t =
  { g; profile; mode_a; mode_b; dead_to_a = false; dead_to_b = false;
    deliveries = 0; stats = fresh_stats () }

(** A plan that never faults (the driver's fault path with this plan
    must behave like the plain transport, modulo bookkeeping). *)
let none () : t = make (Monet_hash.Drbg.of_int 0)

(** Draw a flaky-link profile from [g]: each probability is scaled by
    [severity] (0 = honest, 1 = harsh). *)
let flaky_profile ?(severity = 0.5) (g : Monet_hash.Drbg.t) : profile =
  let u () = Monet_hash.Drbg.float g *. severity in
  {
    p_drop = 0.3 *. u ();
    p_delay = 0.5 *. u ();
    delay_ms = (10.0, 10.0 +. (200.0 *. Monet_hash.Drbg.float g));
    p_duplicate = 0.3 *. u ();
    p_withhold = 0.02 *. u ();
  }

(** Kill both directions and both parties now (used by scenarios that
    make a hop go dark at a precise protocol point). *)
let kill (t : t) : unit =
  t.dead_to_a <- true;
  t.dead_to_b <- true;
  t.mode_a <- Crash_after 0;
  t.mode_b <- Crash_after 0

let mode (t : t) ~(a : bool) = if a then t.mode_a else t.mode_b

(** Has the party stopped participating (for now, or for good)? *)
let crashed (t : t) ~(a : bool) : bool =
  match mode t ~a with
  | Crash_after n | Restart { r_after = n; _ } -> t.deliveries >= n
  | Honest | Silent -> false

(** Does the party swallow its replies (byzantine-silent, or crashed)? *)
let mute (t : t) ~(a : bool) : bool =
  (match mode t ~a with
  | Silent -> true
  | Honest | Crash_after _ | Restart _ -> false)
  || crashed t ~a

(** When the party is down in [Restart] mode: how long it stays down.
    [None] for alive parties and for permanent ([Crash_after]) or
    never-crashing modes. *)
let restart_down_ms (t : t) ~(a : bool) : float option =
  match mode t ~a with
  | Restart { r_after; r_down_ms } when t.deliveries >= r_after ->
      Some r_down_ms
  | Restart _ | Honest | Crash_after _ | Silent -> None

(** Bring a [Restart]-mode party back up (driver-internal; fires after
    its downtime has elapsed). Other modes are untouched — in
    particular a [Crash_after] crash stays permanent. *)
let revive (t : t) ~(a : bool) : unit =
  match mode t ~a with
  | Restart _ -> if a then t.mode_a <- Honest else t.mode_b <- Honest
  | Honest | Crash_after _ | Silent -> ()

(** Crash one party now, with a scheduled comeback — the store's
    partial-write failpoint uses this when a journal append tears. *)
let crash_now (t : t) ~(a : bool) ~(down_ms : float) : unit =
  let m = Restart { r_after = 0; r_down_ms = down_ms } in
  if a then t.mode_a <- m else t.mode_b <- m

(** Can the party originate (re)transmissions? *)
let can_send (t : t) ~(a : bool) : bool = not (mute t ~a)

let note_delivery (t : t) : unit = t.deliveries <- t.deliveries + 1
let note_withheld (t : t) : unit = t.stats.n_withheld <- t.stats.n_withheld + 1

(** The link decision for one message headed to party [to_a]. A dead
    direction always withholds; otherwise the profile's probabilities
    decide (at most one fault per message, drop > withhold > delay >
    duplicate precedence). *)
let decide (t : t) ~(to_a : bool) : action =
  let s = t.stats in
  s.n_decisions <- s.n_decisions + 1;
  if (if to_a then t.dead_to_a else t.dead_to_b) then begin
    s.n_withheld <- s.n_withheld + 1;
    Withhold
  end
  else begin
    let p = t.profile in
    let u = Monet_hash.Drbg.float t.g in
    if u < p.p_drop then begin
      s.n_dropped <- s.n_dropped + 1;
      Drop
    end
    else if u < p.p_drop +. p.p_withhold then begin
      (if to_a then t.dead_to_a <- true else t.dead_to_b <- true);
      s.n_withheld <- s.n_withheld + 1;
      Withhold
    end
    else if u < p.p_drop +. p.p_withhold +. p.p_delay then begin
      let lo, hi = p.delay_ms in
      s.n_delayed <- s.n_delayed + 1;
      Delay (lo +. ((hi -. lo) *. Monet_hash.Drbg.float t.g))
    end
    else if u < p.p_drop +. p.p_withhold +. p.p_delay +. p.p_duplicate then begin
      s.n_duplicated <- s.n_duplicated + 1;
      Duplicate
    end
    else Deliver
  end

(** Total link/party faults that actually fired. *)
let faults_fired (t : t) : int =
  t.stats.n_dropped + t.stats.n_delayed + t.stats.n_duplicated
  + t.stats.n_withheld
