(** Fault plans: a seeded description of how a channel's link and its
    two endpoints misbehave, consulted by {!Monet_channel.Driver} on
    every message send/delivery.

    The plan's grammar is the paper's adversary model made executable:

    - per-message {e link} faults — drop, delay (extra latency on top
      of the transport's sampled latency), duplicate, or {e withhold}
      (the direction dies and stays dead, so retransmissions provably
      fail and the deadline/escalation machinery must take over);
    - per-party modes — [Honest], [Crash_after n] (the party stops
      receiving and sending after the channel's [n]-th delivery:
      crash-stop), or [Silent] (byzantine-silent: the party keeps
      receiving — and updating local state — but never replies).

    All randomness comes from a {!Monet_hash.Drbg}, so a fault
    schedule is a pure function of its seed and the soak harness can
    replay any failing schedule. Decisions and outcomes are counted so
    tests can assert a fault actually fired. *)

type action =
  | Deliver
  | Drop  (** lose this message (transient; a retransmission may pass) *)
  | Delay of float  (** deliver with this many extra simulated ms *)
  | Duplicate  (** deliver twice (receiver-side dedup must cope) *)
  | Withhold  (** this direction of the link dies, permanently *)

type party_mode =
  | Honest
  | Crash_after of int
      (** crash-stop once the channel has seen this many deliveries *)
  | Silent  (** byzantine-silent: receives and mutates state, never replies *)

(** Per-message fault probabilities; [delay_ms] is the extra-latency
    range a [Delay] samples from. *)
type profile = {
  p_drop : float;
  p_delay : float;
  delay_ms : float * float;
  p_duplicate : float;
  p_withhold : float;
}

type stats = {
  mutable n_decisions : int;
  mutable n_dropped : int;
  mutable n_delayed : int;
  mutable n_duplicated : int;
  mutable n_withheld : int; (* messages swallowed by a dead link/party *)
}

type t = {
  g : Monet_hash.Drbg.t;
  profile : profile;
  mutable mode_a : party_mode;
  mutable mode_b : party_mode;
  mutable dead_to_a : bool; (* sticky withhold, per direction *)
  mutable dead_to_b : bool;
  mutable deliveries : int; (* successful deliveries, drives Crash_after *)
  stats : stats;
}

let fresh_stats () =
  { n_decisions = 0; n_dropped = 0; n_delayed = 0; n_duplicated = 0;
    n_withheld = 0 }

let honest_profile =
  { p_drop = 0.0; p_delay = 0.0; delay_ms = (0.0, 0.0); p_duplicate = 0.0;
    p_withhold = 0.0 }

let make ?(profile = honest_profile) ?(mode_a = Honest) ?(mode_b = Honest)
    (g : Monet_hash.Drbg.t) : t =
  { g; profile; mode_a; mode_b; dead_to_a = false; dead_to_b = false;
    deliveries = 0; stats = fresh_stats () }

(** A plan that never faults (the driver's fault path with this plan
    must behave like the plain transport, modulo bookkeeping). *)
let none () : t = make (Monet_hash.Drbg.of_int 0)

(** Draw a flaky-link profile from [g]: each probability is scaled by
    [severity] (0 = honest, 1 = harsh). *)
let flaky_profile ?(severity = 0.5) (g : Monet_hash.Drbg.t) : profile =
  let u () = Monet_hash.Drbg.float g *. severity in
  {
    p_drop = 0.3 *. u ();
    p_delay = 0.5 *. u ();
    delay_ms = (10.0, 10.0 +. (200.0 *. Monet_hash.Drbg.float g));
    p_duplicate = 0.3 *. u ();
    p_withhold = 0.02 *. u ();
  }

(** Kill both directions and both parties now (used by scenarios that
    make a hop go dark at a precise protocol point). *)
let kill (t : t) : unit =
  t.dead_to_a <- true;
  t.dead_to_b <- true;
  t.mode_a <- Crash_after 0;
  t.mode_b <- Crash_after 0

let mode (t : t) ~(a : bool) = if a then t.mode_a else t.mode_b

(** Has the party stopped participating entirely? *)
let crashed (t : t) ~(a : bool) : bool =
  match mode t ~a with
  | Crash_after n -> t.deliveries >= n
  | Honest | Silent -> false

(** Does the party swallow its replies (byzantine-silent, or crashed)? *)
let mute (t : t) ~(a : bool) : bool =
  (match mode t ~a with Silent -> true | Honest | Crash_after _ -> false)
  || crashed t ~a

(** Can the party originate (re)transmissions? *)
let can_send (t : t) ~(a : bool) : bool = not (mute t ~a)

let note_delivery (t : t) : unit = t.deliveries <- t.deliveries + 1
let note_withheld (t : t) : unit = t.stats.n_withheld <- t.stats.n_withheld + 1

(** The link decision for one message headed to party [to_a]. A dead
    direction always withholds; otherwise the profile's probabilities
    decide (at most one fault per message, drop > withhold > delay >
    duplicate precedence). *)
let decide (t : t) ~(to_a : bool) : action =
  let s = t.stats in
  s.n_decisions <- s.n_decisions + 1;
  if (if to_a then t.dead_to_a else t.dead_to_b) then begin
    s.n_withheld <- s.n_withheld + 1;
    Withhold
  end
  else begin
    let p = t.profile in
    let u = Monet_hash.Drbg.float t.g in
    if u < p.p_drop then begin
      s.n_dropped <- s.n_dropped + 1;
      Drop
    end
    else if u < p.p_drop +. p.p_withhold then begin
      (if to_a then t.dead_to_a <- true else t.dead_to_b <- true);
      s.n_withheld <- s.n_withheld + 1;
      Withhold
    end
    else if u < p.p_drop +. p.p_withhold +. p.p_delay then begin
      let lo, hi = p.delay_ms in
      s.n_delayed <- s.n_delayed + 1;
      Delay (lo +. ((hi -. lo) *. Monet_hash.Drbg.float t.g))
    end
    else if u < p.p_drop +. p.p_withhold +. p.p_delay +. p.p_duplicate then begin
      s.n_duplicated <- s.n_duplicated + 1;
      Duplicate
    end
    else Deliver
  end

(** Total link/party faults that actually fired. *)
let faults_fired (t : t) : int =
  t.stats.n_dropped + t.stats.n_delayed + t.stats.n_duplicated
  + t.stats.n_withheld
