(* Shared safety-property checker over abstract channel views.

   Both verification tiers — the randomized chaos/crash soaks
   (lib/fault/chaos) and the exhaustive bounded model checker
   (lib/mc) — must check the *same* properties, or a bug could slip
   through the gap between them. This module is that single source of
   truth: it knows nothing about the concrete [Monet_channel.Channel]
   records or the abstract model-checker states; callers project
   whatever they hold into the small view records below and every
   property is stated once, here, over those views.

   The views carry exactly the fields the paper's §IV-B security
   argument quantifies over: per-party state number, balance pair,
   lock-pending flag and closed flag, plus the per-channel capacity,
   funding-spent bit and the list of on-chain settlements the run
   recorded. *)

type party_view = {
  pv_state : int;
  pv_my : int;
  pv_their : int;
  pv_lock : bool;
  pv_closed : bool;
}

type channel_view = {
  cv_tag : string;
  cv_capacity : int;
  cv_a : party_view;
  cv_b : party_view;
  cv_funding_spent : bool;
  cv_settlements : (int * int) list;
}

let mk_err errs = Printf.ksprintf (fun s -> errs := s :: !errs)

(* INV-3 (view consistency): both parties of a channel agree on the
   state number, the mirrored balances, the closed flag and whether a
   lock is pending. Sound to check only at quiescence — mid-session
   the views legitimately diverge until the refresh completes or the
   driver rolls both parties back. *)
let check_consistency (cv : channel_view) : string list =
  let errs = ref [] in
  let err fmt = mk_err errs fmt in
  let a = cv.cv_a and b = cv.cv_b in
  if a.pv_state <> b.pv_state then
    err "%s: state views diverge (%d vs %d)" cv.cv_tag a.pv_state b.pv_state;
  if a.pv_closed <> b.pv_closed then err "%s: closed views diverge" cv.cv_tag;
  if a.pv_my <> b.pv_their || a.pv_their <> b.pv_my then
    err "%s: balance views diverge" cv.cv_tag;
  if a.pv_lock <> b.pv_lock then err "%s: lock views diverge" cv.cv_tag;
  List.rev !errs

(* INV-1/INV-2/INV-4/INV-5 (conservation and closure): open channels
   hold non-negative balances summing to the capacity with the funding
   output unspent and nothing settled; closed channels settled exactly
   once, the payouts conserve the capacity, and the funding key image
   is spent. A second settlement is a double punishment / double
   close. These hold at *every* state: balances only move when a
   refresh session commits, and a settlement is atomic. *)
let check_funds (cv : channel_view) : string list =
  let errs = ref [] in
  let err fmt = mk_err errs fmt in
  let a = cv.cv_a and b = cv.cv_b in
  let cap = cv.cv_capacity in
  if a.pv_closed || b.pv_closed then begin
    (match cv.cv_settlements with
    | [ (pa, pb) ] ->
        if pa + pb <> cap then
          err "%s: on-chain payout %d+%d does not conserve capacity %d"
            cv.cv_tag pa pb cap
    | [] -> err "%s: closed with no recorded settlement" cv.cv_tag
    | ps ->
        err "%s: settled %d times (double punishment?)" cv.cv_tag
          (List.length ps));
    if not cv.cv_funding_spent then
      err "%s: closed but the funding key image is unspent" cv.cv_tag
  end
  else begin
    if a.pv_my < 0 || b.pv_my < 0 then err "%s: negative balance" cv.cv_tag;
    (* Conservation is per VIEW: each party's own (my, their) pair must
       sum to the capacity at every state — mid-commit the two parties
       legitimately sit at different states, so the cross-party sum
       a.my + b.my only holds at quiescence, where it follows from
       per-view conservation plus INV-3's balance agreement. *)
    if a.pv_my + a.pv_their <> cap then
      err "%s: off-chain balances %d+%d (A's view) do not conserve capacity %d"
        cv.cv_tag a.pv_my a.pv_their cap;
    if b.pv_my + b.pv_their <> cap then
      err "%s: off-chain balances %d+%d (B's view) do not conserve capacity %d"
        cv.cv_tag b.pv_my b.pv_their cap;
    if cv.cv_funding_spent then
      err "%s: open but the funding key image is spent" cv.cv_tag;
    if cv.cv_settlements <> [] then
      err "%s: settlement recorded for an open channel" cv.cv_tag
  end;
  List.rev !errs

(* INV-6 (lock resolution): no lock is left pending once the channel
   is quiescent and its payment reached a terminal fate — every lock
   must have been unlocked, cancelled or escalated to a close. *)
let check_locks_resolved (cv : channel_view) : string list =
  if (not (cv.cv_a.pv_closed || cv.cv_b.pv_closed))
     && (cv.cv_a.pv_lock || cv.cv_b.pv_lock)
  then [ Printf.sprintf "%s: lock left pending after recovery" cv.cv_tag ]
  else []

let check_channel ?(quiescent = true) (cv : channel_view) : string list =
  check_funds cv
  @ (if quiescent then check_consistency cv @ check_locks_resolved cv else [])

let check_channels ?(quiescent = true) (cvs : channel_view list) : string list
    =
  List.concat_map (check_channel ~quiescent) cvs

(* INV-8 (fee-level conservation): for runs that stayed entirely
   off-chain, each participant's wealth must land exactly on its
   expected value — sender down by amount plus fees, receiver up by
   the amount, intermediaries up by their forwarding fee, bystanders
   unchanged. Callers compute the expectations; the property itself
   (got = expected, for everyone) lives here. *)
let check_wealth (entries : (string * int * int) list) : string list =
  List.filter_map
    (fun (tag, expected, got) ->
      if got <> expected then
        Some
          (Printf.sprintf
             "%s: wealth %d after the payment, expected %d (fees not \
              conserved)"
             tag got expected)
      else None)
    entries

(* INV-7 (tower reconciliation): the watchtower's bookkeeping must
   reconcile with the run's observable outcomes — it never watches
   more channels than are open (punished/closed entries are pruned),
   and its punishment counter equals the punishments the run actually
   observed (a higher count would be a double punishment). *)
let check_tower ~(watched : int) ~(open_channels : int) ~(counted : int)
    ~(observed : int) : string list =
  let errs = ref [] in
  let err fmt = mk_err errs fmt in
  if watched > open_channels then
    err "watchtower still watches a closed channel";
  if counted <> observed then
    err "tower counted %d punishments, fates show %d (double punishment?)"
      counted observed;
  List.rev !errs
