(** A minimal account-model, contract-capable chain — the substrate the
    Key Escrow Service is deployed on (the paper uses Ethereum; see
    DESIGN.md §2 for the substitution).

    Contracts are OCaml message handlers behind a byte-level ABI; they
    read and write a key-value store whose accesses are gas-metered
    like EVM storage, so call costs are deterministic and comparable
    across code paths. Time advances explicitly (the discrete-event
    simulator drives it), which is what the KES timers run on. *)

type address = string

type event = { ev_contract : int; ev_name : string; ev_data : string }

(** Gas-metered contract storage. *)
type storage = {
  kv : (string, string) Hashtbl.t;
  mutable meter : Gas.meter; (* swapped in per call *)
}

let sget (s : storage) (k : string) : string option =
  Gas.charge s.meter Gas.sload;
  Hashtbl.find_opt s.kv k

(* Storage writes are charged per 32-byte word, as the EVM does. *)
let sset (s : storage) (k : string) (v : string) : unit =
  let words = max 1 ((String.length v + 31) / 32) in
  let per_word = if Hashtbl.mem s.kv k then Gas.sstore_update else Gas.sstore_new in
  Gas.charge s.meter (words * per_word);
  Hashtbl.replace s.kv k v

let sdel (s : storage) (k : string) : unit =
  Gas.charge s.meter Gas.sstore_update;
  Hashtbl.remove s.kv k

type ctx = {
  caller : address;
  now : int; (* chain time, milliseconds of simulated clock *)
  meter : Gas.meter;
  emit : string -> string -> unit; (* name, data *)
}

type handler = ctx -> string (* method *) -> string (* args *) -> (string, string) result

type contract = { c_storage : storage; c_handler : handler; c_code_size : int }

type receipt = { r_ok : (string, string) result; r_gas : int; r_events : event list }

type t = {
  mutable time : int;
  mutable height : int;
  mutable contracts : contract array;
  mutable n_contracts : int;
  mutable log : event list; (* newest first *)
}

let create () : t =
  { time = 0; height = 0; contracts = [||]; n_contracts = 0; log = [] }

let now (c : t) = c.time
let advance_time (c : t) (ms : int) = c.time <- c.time + ms

(** Deploy a contract; returns (contract id, deploy gas). *)
let deploy (c : t) ~(code_size : int) ~(make : storage -> handler) : int * int =
  let meter = Gas.create () in
  Gas.charge meter (Gas.deploy_base + (code_size * Gas.per_code_byte));
  let storage = { kv = Hashtbl.create 16; meter } in
  let contract = { c_storage = storage; c_handler = make storage; c_code_size = code_size } in
  if c.n_contracts = Array.length c.contracts then begin
    let bigger = Array.make (max 4 (2 * Array.length c.contracts)) contract in
    Array.blit c.contracts 0 bigger 0 c.n_contracts;
    c.contracts <- bigger
  end;
  c.contracts.(c.n_contracts) <- contract;
  c.n_contracts <- c.n_contracts + 1;
  (c.n_contracts - 1, meter.Gas.used)

let m_calls = Monet_obs.Metrics.counter "script.calls"
let m_gas = Monet_obs.Metrics.counter "script.gas"

(* Every contract call funnels through here, so charging the gas
   counter and emitting a trace event at the end of [call] attributes
   all script-chain cost to whatever span is open (DESIGN.md §3.8). *)
let observe_receipt ~(meth : string) (r : receipt) : receipt =
  Monet_obs.Metrics.bump m_calls;
  Monet_obs.Metrics.add m_gas r.r_gas;
  Monet_obs.Trace.event "script.call"
    ~attrs:
      [ ("method", meth); ("gas", string_of_int r.r_gas);
        ("ok", match r.r_ok with Ok _ -> "true" | Error _ -> "false") ];
  r

(** Call a contract method as an on-chain transaction. *)
let call (c : t) ~(caller : address) ~(contract : int) ~(meth : string)
    ~(args : string) : receipt =
  if contract < 0 || contract >= c.n_contracts then
    observe_receipt ~meth { r_ok = Error "no such contract"; r_gas = 0; r_events = [] }
  else begin
    let k = c.contracts.(contract) in
    let meter = Gas.create () in
    Gas.charge meter Gas.tx_base;
    k.c_storage.meter <- meter;
    let events = ref [] in
    let emit name data =
      Gas.charge meter (Gas.event_base + (String.length data * Gas.per_event_byte));
      events := { ev_contract = contract; ev_name = name; ev_data = data } :: !events
    in
    let ctx = { caller; now = c.time; meter; emit } in
    let r_ok =
      try k.c_handler ctx meth args with
      | Gas.Out_of_gas -> Error "out of gas"
      | Monet_util.Wire.Truncated -> Error "malformed call data"
    in
    c.height <- c.height + 1;
    c.log <- !events @ c.log;
    observe_receipt ~meth
      { r_ok; r_gas = meter.Gas.used; r_events = List.rev !events }
  end

(** Events emitted since a given log position (for off-chain watchers:
    escrowers, channel parties). *)
let events_since (c : t) (n : int) : event list * int =
  let all = List.rev c.log in
  let total = List.length all in
  let fresh = List.filteri (fun i _ -> i >= n) all in
  (fresh, total)
