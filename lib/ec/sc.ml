(** Scalar arithmetic modulo the ed25519 group order
    ℓ = 2^252 + 27742317777372353535851937790883648493. *)

include Fp.Make (struct
  let modulus_hex = "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed"
  let name = "sc25519"
end)

let l = modulus

(* Scalars are secret material (keys, witnesses, adaptor shares); a
   Bn-level compare would exit at the first differing limb, leaking
   the mismatch position. Compare canonical encodings in constant
   time instead. *)
let equal (a : t) (b : t) : bool =
  Monet_util.Bytes_ext.ct_equal (to_bytes_le a) (to_bytes_le b)

(** Reduce a 64-byte little-endian value (e.g. a SHA-512 digest) to a
    scalar, as standard ed25519 does. *)
let of_bytes_le_wide (s : string) : t =
  if String.length s <> 64 then invalid_arg "Sc.of_bytes_le_wide: need 64 bytes";
  of_bn (Bn.of_bytes_le s)

(** Hash arbitrary data to a scalar with a domain tag. *)
let of_hash (tag : string) (parts : string list) : t =
  of_bytes_le_wide (Monet_hash.Hash.tagged ("sc/" ^ tag) parts)

(** A non-zero random scalar. *)
let random_nonzero (g : Monet_hash.Drbg.t) : t =
  let rec go () =
    let x = random g in
    if is_zero x then go () else x
  in
  go ()
