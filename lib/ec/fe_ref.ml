(** Reference implementation of the ed25519 base field GF(2^255 - 19)
    over variable-length {!Bn} arrays.

    This was the production field until the ten-limb kernel in {!Fe}
    replaced it; it is kept as the differential-testing oracle
    (test/test_ec.ml) and as the baseline side of bench/ec_bench.ml.
    Nothing on a hot path should use it. *)

include Fp.Make (struct
  let modulus_hex = "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"
  let name = "fe25519"
end)

let p = modulus
let nineteen = Bn.of_int 19

(* Specialized reduction: 2^255 = 19 (mod p). Folding twice brings any
   510-bit product below ~2^132 + 2^255, after which at most one
   subtraction of p remains. Faster than Barrett on this modulus. *)
let reduce_fold (x : Bn.t) : Bn.t =
  let fold x =
    if Bn.num_bits x <= 255 then x
    else begin
      let hi = Bn.shift_right_bits x 255 in
      let lo = Bn.sub x (Bn.shift_left_bits hi 255) in
      Bn.add lo (Bn.mul hi nineteen)
    end
  in
  let x = fold (fold x) in
  let rec trim x = if Bn.compare x p >= 0 then trim (Bn.sub x p) else x in
  trim x

(* Specialized multiplication: schoolbook over at most 10 base-2^26
   limbs, then limb-aligned folding using 2^260 ≡ 608 and a final
   bit-level fold of bits ≥ 255 using 2^255 ≡ 19. Avoids the generic
   shift/divide machinery of [Bn]; point arithmetic lives on this. *)
let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then Bn.zero
  else begin
    let prod = Array.make 20 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let v = prod.(i + j) + (ai * b.(j)) + !carry in
        prod.(i + j) <- v land 0x3ffffff;
        carry := v lsr 26
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = prod.(!k) + !carry in
        prod.(!k) <- v land 0x3ffffff;
        carry := v lsr 26;
        incr k
      done
    done;
    (* Fold limbs 10..19 down with 2^260 = 608 (mod p). *)
    for i = 10 to 19 do
      prod.(i - 10) <- prod.(i - 10) + (prod.(i) * 608);
      prod.(i) <- 0
    done;
    (* Carry chain; the overflow above limb 9 folds again via 608. *)
    let carry = ref 0 in
    for i = 0 to 9 do
      let v = prod.(i) + !carry in
      prod.(i) <- v land 0x3ffffff;
      carry := v lsr 26
    done;
    while !carry <> 0 do
      let c = !carry in
      carry := 0;
      prod.(0) <- prod.(0) + (c * 608);
      for i = 0 to 9 do
        let v = prod.(i) + !carry in
        prod.(i) <- v land 0x3ffffff;
        carry := v lsr 26
      done
    done;
    (* Bit-level fold of bits 255.. (top 5 bits of limb 9) via 19. *)
    let hi = prod.(9) lsr 21 in
    if hi <> 0 then begin
      prod.(9) <- prod.(9) land 0x1fffff;
      prod.(0) <- prod.(0) + (19 * hi);
      let carry = ref 0 in
      for i = 0 to 9 do
        let v = prod.(i) + !carry in
        prod.(i) <- v land 0x3ffffff;
        carry := v lsr 26
      done;
      assert (!carry = 0)
    end;
    let r = Bn.normalize prod in
    let rec trim x = if Bn.compare x p >= 0 then trim (Bn.sub x p) else x in
    trim r
  end

let sq a = mul a a

(* Re-derive pow over the faster mul. *)
let pow (base : t) (e : Bn.t) : t =
  let n = Bn.num_bits e in
  let acc = ref one and b = ref (reduce_fold base) in
  for i = 0 to n - 1 do
    if Bn.testbit e i then acc := mul !acc !b;
    if i < n - 1 then b := sq !b
  done;
  !acc

let inv a = pow a (Bn.sub p (Bn.of_int 2))

(* Curve constants. *)
let d = of_hex "52036cee2b6ffe738cc740797779e89800700a4d4141d8ab75eb4dca135978a3"
let sqrt_m1 = of_hex "2b8324804fc1df0b2b4d00993dfbd7a72f431806ad2fe478c4ee1b274a0ea0b0"

(** Square root mod p (p = 5 mod 8): candidate = a^((p+3)/8), fixed up
    by sqrt(-1) when needed. Returns [None] if [a] is a non-residue. *)
let sqrt (a : t) : t option =
  let e = Bn.shift_right_bits (Bn.add p (Bn.of_int 3)) 3 in
  let x = pow a e in
  let x2 = sq x in
  if equal x2 a then Some x
  else begin
    let x' = mul x sqrt_m1 in
    if equal (sq x') a then Some x' else None
  end

let is_odd (a : t) : bool = Bn.testbit a 0
