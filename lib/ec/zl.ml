(** The multiplicative group Z_ℓ* and its exponent ring Z_{ℓ-1}.

    This is the algebraic home of the VCOF consecutive function
    (DESIGN.md §3.2): witnesses are chained by y ↦ h^y mod ℓ, which is
    one-way under the discrete logarithm assumption in Z_ℓ*, while
    remaining a scalar usable on the ed25519 curve. Stadler-style
    double-discrete-log proofs need arithmetic on exponents, which
    lives modulo the group order ℓ-1. *)

(** Exponent ring Z_{ℓ-1}. ℓ-1 is not prime; we only use its additive
    structure (inverse-free), so [Fp.Make]'s add/sub/mul are sound and
    [inv] must not be used. *)
module Exp = Fp.Make (struct
  let modulus_hex = "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ec"
  let name = "zl-exponent"
end)

(* Barrett context for ℓ itself, reused for all chain exponentiations. *)
let ctx = Bn.Barrett.create Sc.l

(** The public chain base h (the VCOF public parameter pp). Any element
    of large multiplicative order works; we fix a small generator
    candidate and expose it as the default. *)
let default_base : Sc.t = Bn.of_int 7

(* Fixed-base comb tables for [pow]. Stadler proofs exponentiate the
   same public base h for every one of their 80 repetitions, so the
   squaring schedule of a generic square-and-multiply is pure waste:
   precompute h^(d·2^(4i)) for each 4-bit window i and digit d once,
   and a 384-bit exponentiation becomes ~96 modular multiplications
   with no squarings at all. Tables are cached per base for the whole
   process (paid once, shared by prover, verifier and batch verifier);
   a mutex makes the cache safe to consult from worker domains. *)
let comb_window = 4
let comb_windows = ((8 * 48) + comb_window - 1) / comb_window (* 384-bit exps *)

type comb = Bn.t array array (* comb.(i).(d) = h^(d·2^(4i)) mod ℓ *)

let combs : (string, comb) Hashtbl.t = Hashtbl.create 4
let combs_mu = Mutex.create ()

let build_comb (h : Sc.t) : comb =
  let unit = Bn.rem Bn.one Sc.l in
  let t = Array.make_matrix comb_windows 16 unit in
  let base = ref (Bn.Barrett.reduce ctx h) in
  for i = 0 to comb_windows - 1 do
    for d = 1 to 15 do
      t.(i).(d) <- Bn.Barrett.mul_mod ctx t.(i).(d - 1) !base
    done;
    if i < comb_windows - 1 then
      for _ = 1 to comb_window do
        base := Bn.Barrett.mul_mod ctx !base !base
      done
  done;
  t

let comb_of (h : Sc.t) : comb =
  let key = Bn.to_bytes_le h ~len:32 in
  Mutex.protect combs_mu (fun () ->
      match Hashtbl.find_opt combs key with
      | Some t -> t
      | None ->
          let t = build_comb h in
          Hashtbl.add combs key t;
          t)

(** [pow h x] = h^x mod ℓ — the VCOF consecutive one-way step.
    Fixed-base comb for exponents up to 384 bits; generic Barrett
    square-and-multiply beyond that. *)
let pow (h : Sc.t) (x : Bn.t) : Sc.t =
  if Bn.num_bits x > comb_windows * comb_window then Bn.Barrett.pow_mod ctx h x
  else begin
    let t = comb_of h in
    let nwin = (Bn.num_bits x + comb_window - 1) / comb_window in
    let acc = ref (Bn.rem Bn.one Sc.l) in
    for i = 0 to nwin - 1 do
      let d = ref 0 in
      for b = comb_window - 1 downto 0 do
        d := (!d lsl 1) lor (if Bn.testbit x ((i * comb_window) + b) then 1 else 0)
      done;
      if !d <> 0 then acc := Bn.Barrett.mul_mod ctx !acc t.(i).(!d)
    done;
    !acc
  end

(** Fold a scalar (mod ℓ) into the exponent ring (mod ℓ-1). *)
let exp_of_scalar (x : Sc.t) : Exp.t = Exp.of_bn x
