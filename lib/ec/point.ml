(** The ed25519 group: twisted Edwards curve -x² + y² = 1 + d·x²·y²
    over GF(2^255-19), in extended homogeneous coordinates (X:Y:Z:T)
    with x = X/Z, y = Y/Z, T = XY/Z.

    Arithmetic is variable-time: this is a research reproduction, not a
    hardened wallet. Encoding is the standard 32-byte little-endian y
    with the sign of x in the top bit.

    Scalar multiplication strategy (DESIGN.md §3.5):
    - {!mul}: width-5 signed sliding window (wNAF) over a precomputed
      odd-multiples table of the point — ~252 doublings, ~42 additions;
    - {!mul_base}: fixed-base comb over a lazy 32x255 byte-window table
      of B — 32 additions, no doublings;
    - {!mul2} / {!double_mul}: Straus–Shamir interleaving, one shared
      doubling chain for both scalars; [double_mul a p b] = a·P + b·B
      uses a wider (width-8) wNAF table for the fixed base. Every
      verification equation in sig/sigma/cas/vcof/xmr routes through
      these instead of two independent {!mul} calls. *)

type t = { x : Fe.t; y : Fe.t; z : Fe.t; t : Fe.t }

(* Scalar-multiplication provenance counters (DESIGN.md §3.8). *)
let m_mul = Monet_obs.Metrics.counter "ec.point_mul"
let m_mul_base = Monet_obs.Metrics.counter "ec.point_mul_base"
let m_mul2 = Monet_obs.Metrics.counter "ec.point_mul2"
let m_double_mul = Monet_obs.Metrics.counter "ec.point_double_mul"

let identity = { x = Fe.zero; y = Fe.one; z = Fe.one; t = Fe.zero }

let of_affine (x : Fe.t) (y : Fe.t) : t = { x; y; z = Fe.one; t = Fe.mul x y }

(* Base point B: y = 4/5, x recovered with even sign convention. *)
let base =
  of_affine
    (Fe.of_hex "216936d3cd6e53fec0a4e231fdd6dc5c692cc7609525a7b2c9562d608f25d51a")
    (Fe.of_hex "6666666666666666666666666666666666666666666666666666666666666658")

let d2 = Fe.add Fe.d Fe.d

(* add-2008-hwcd-3 for a = -1 (unified: works for doubling too). *)
let add (p : t) (q : t) : t =
  let a = Fe.mul (Fe.sub p.y p.x) (Fe.sub q.y q.x) in
  let b = Fe.mul (Fe.add p.y p.x) (Fe.add q.y q.x) in
  let c = Fe.mul (Fe.mul p.t d2) q.t in
  let dd = Fe.mul (Fe.add p.z p.z) q.z in
  let e = Fe.sub b a in
  let f = Fe.sub dd c in
  let g = Fe.add dd c in
  let h = Fe.add b a in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

(* dbl-2008-hwcd with a = -1. *)
let double (p : t) : t =
  let a = Fe.sq p.x in
  let b = Fe.sq p.y in
  let z2 = Fe.sq p.z in
  let c = Fe.add z2 z2 in
  let dd = Fe.neg a in
  let e = Fe.sub (Fe.sub (Fe.sq (Fe.add p.x p.y)) a) b in
  let g = Fe.add dd b in
  let f = Fe.sub g c in
  let h = Fe.sub dd b in
  { x = Fe.mul e f; y = Fe.mul g h; t = Fe.mul e h; z = Fe.mul f g }

let neg (p : t) : t = { p with x = Fe.neg p.x; t = Fe.neg p.t }
let sub_point (p : t) (q : t) : t = add p (neg q)

let equal (p : t) (q : t) : bool =
  (* (X1/Z1 = X2/Z2) and (Y1/Z1 = Y2/Z2), cross-multiplied. *)
  Fe.equal (Fe.mul p.x q.z) (Fe.mul q.x p.z)
  && Fe.equal (Fe.mul p.y q.z) (Fe.mul q.y p.z)

(* O = (0 : Z : Z : 0), so X = 0 ∧ Y = Z suffices — no field
   multiplications, unlike going through [equal p identity]. *)
let is_identity (p : t) : bool = Fe.is_zero p.x && Fe.equal p.y p.z

(* --- Scalar recoding ------------------------------------------------ *)

(* Signed sliding-window recoding: returns 262 digits, each 0 or odd in
   [-m, m] (m = 2^(w-1) - 1 for width w), with nonzero digits at least
   w apart. Positions ≥ 256 only ever hold a carry bit from the borrow
   propagation; scalars here are < 2^255. *)
let slide ~(m : int) (k : Sc.t) : int array =
  let bytes = Sc.to_bytes_le k in
  let r = Array.make 262 0 in
  for i = 0 to 255 do
    r.(i) <- (Char.code bytes.[i lsr 3] lsr (i land 7)) land 1
  done;
  for i = 0 to 255 do
    if r.(i) <> 0 then begin
      let b = ref 1 in
      while !b <= 8 && i + !b <= 255 do
        (if r.(i + !b) <> 0 then
           let v = r.(i + !b) lsl !b in
           if r.(i) + v <= m then begin
             r.(i) <- r.(i) + v;
             r.(i + !b) <- 0
           end
           else if r.(i) - v >= -m then begin
             r.(i) <- r.(i) - v;
             (* propagate the borrow upward *)
             let j = ref (i + !b) in
             let carrying = ref true in
             while !carrying do
               if r.(!j) = 0 then begin
                 r.(!j) <- 1;
                 carrying := false
               end
               else begin
                 r.(!j) <- 0;
                 incr j
               end
             done
           end
           else b := 9 (* window exhausted *));
        incr b
      done
    end
  done;
  r

(* tbl.(i) = (2i+1)·P *)
let odd_multiples (p : t) (n : int) : t array =
  let tbl = Array.make n p in
  let p2 = double p in
  for i = 1 to n - 1 do
    tbl.(i) <- add tbl.(i - 1) p2
  done;
  tbl

(* Apply a wNAF digit d (0 or odd) against an odd-multiples table. *)
let apply_digit (acc : t) (tbl : t array) (d : int) : t =
  if d > 0 then add acc tbl.(d asr 1)
  else if d < 0 then sub_point acc tbl.(-d asr 1)
  else acc

(* Fixed-base comb: table.(w).(j) = (j+1) · 256^w · B, built with one
   running row (32·255 additions, amortized over the process). *)
let base_table : t array array lazy_t =
  lazy
    (let step = ref base in
     Array.init 32 (fun _ ->
         let row = Array.make 255 identity in
         row.(0) <- !step;
         for j = 1 to 254 do
           row.(j) <- add row.(j - 1) !step
         done;
         (* 256·step = row.(254) + step, seeding the next window *)
         step := add row.(254) !step;
         row))

(** [mul_base k] = k·B: one table addition per nonzero scalar byte. *)
let mul_base (k : Sc.t) : t =
  Monet_obs.Metrics.bump m_mul_base;
  let table = Lazy.force base_table in
  let acc = ref identity in
  let bytes = Sc.to_bytes_le k in
  for i = 0 to 31 do
    let byte = Char.code bytes.[i] in
    if byte <> 0 then acc := add !acc table.(i).(byte - 1)
  done;
  !acc

(** Variable-base multiplication: width-5 wNAF over an 8-entry
    odd-multiples table. [mul k Point.base] is redirected to the comb
    (callers should say {!mul_base}, but the literal base point is
    cheap to recognize and common in generic code such as DLEQ over
    (G, Hp)). *)
let mul (k : Sc.t) (p : t) : t =
  if p == base then mul_base k
  else begin
    Monet_obs.Metrics.bump m_mul;
    let naf = slide ~m:15 k in
    let i = ref 261 in
    while !i >= 0 && naf.(!i) = 0 do
      decr i
    done;
    if !i < 0 then identity
    else begin
      let tbl = odd_multiples p 8 in
      let acc = ref (apply_digit identity tbl naf.(!i)) in
      for j = !i - 1 downto 0 do
        acc := double !acc;
        acc := apply_digit !acc tbl naf.(j)
      done;
      !acc
    end
  end

(* Width-8 wNAF table of B for the Straus fixed-base leg. *)
let base_wnaf_table : t array lazy_t = lazy (odd_multiples base 64)

(** Force the process-wide precomputed tables. OCaml lazies are not
    safe to force concurrently (CamlinternalLazy.Undefined); anything
    that spawns domains which touch the group (lib/net/shard.ml) must
    call this on the parent domain first. *)
let force_precomp () =
  ignore (Lazy.force base_table);
  ignore (Lazy.force base_wnaf_table)

(** Whether both precomputed tables have been materialized — the
    invariant {!force_precomp} establishes. Exposed so tests can
    assert the tables are forced before the first [Domain.spawn]. *)
let precomp_forced () = Lazy.is_val base_table && Lazy.is_val base_wnaf_table

(** [mul2 a p b q] = a·P + b·Q by Straus–Shamir interleaving: one
    shared doubling chain, two width-5 wNAF digit streams. *)
let mul2 (a : Sc.t) (p : t) (b : Sc.t) (q : t) : t =
  Monet_obs.Metrics.bump m_mul2;
  let na = slide ~m:15 a and nb = slide ~m:15 b in
  let i = ref 261 in
  while !i >= 0 && na.(!i) = 0 && nb.(!i) = 0 do
    decr i
  done;
  if !i < 0 then identity
  else begin
    let ta = odd_multiples p 8 and tb = odd_multiples q 8 in
    let acc = ref (apply_digit (apply_digit identity ta na.(!i)) tb nb.(!i)) in
    for j = !i - 1 downto 0 do
      acc := double !acc;
      acc := apply_digit !acc ta na.(j);
      acc := apply_digit !acc tb nb.(j)
    done;
    !acc
  end

(** [double_mul a p b] = a·P + b·B — the verifier's workhorse: every
    sig/sigma check of the shape s·G ± c·X goes through here, paying
    one doubling chain instead of two. The fixed-base leg uses a
    width-8 wNAF (64-entry odd-multiples table of B). *)
let double_mul (a : Sc.t) (p : t) (b : Sc.t) : t =
  Monet_obs.Metrics.bump m_double_mul;
  let na = slide ~m:15 a and nb = slide ~m:127 b in
  let i = ref 261 in
  while !i >= 0 && na.(!i) = 0 && nb.(!i) = 0 do
    decr i
  done;
  if !i < 0 then identity
  else begin
    let ta = odd_multiples p 8 and tb = Lazy.force base_wnaf_table in
    let acc = ref (apply_digit (apply_digit identity ta na.(!i)) tb nb.(!i)) in
    for j = !i - 1 downto 0 do
      acc := double !acc;
      acc := apply_digit !acc ta na.(j);
      acc := apply_digit !acc tb nb.(j)
    done;
    !acc
  end

(* --- Multi-scalar multiplication (Pippenger) ------------------------ *)

(* Signed base-2^w digit recoding: digits d_j ∈ [-2^(w-1), 2^(w-1)]
   with Σ d_j·2^(jw) = k. One extra digit absorbs the final carry
   (scalars are < 2^253). *)
let signed_digits ~(w : int) (k : Sc.t) : int array =
  let bytes = Sc.to_bytes_le k in
  let nwin = ((256 + w - 1) / w) + 1 in
  let digits = Array.make nwin 0 in
  let byte i = if i >= 32 then 0 else Char.code (String.unsafe_get bytes i) in
  (* Only recode up to the scalar's top nonzero byte: short (e.g.
     128-bit batch-randomizer) scalars fill half the windows with
     structural zeros. *)
  let top = ref 31 in
  while !top > 0 && byte !top = 0 do
    decr top
  done;
  let last_win = min (nwin - 1) ((((!top + 1) * 8) / w) + 1) in
  let mask = (1 lsl w) - 1 in
  let half = 1 lsl (w - 1) in
  let carry = ref 0 in
  for j = 0 to last_win do
    (* Window j covers bits [j·w, j·w + w); with w ≤ 13 it spans at
       most three bytes, read in one go. *)
    let bit0 = j * w in
    let idx = bit0 lsr 3 and off = bit0 land 7 in
    let v =
      (byte idx lor (byte (idx + 1) lsl 8) lor (byte (idx + 2) lsl 16))
      lsr off land mask
    in
    let u = ref (v + !carry) in
    if !u > half then begin
      digits.(j) <- !u - (1 lsl w);
      carry := 1
    end
    else begin
      digits.(j) <- !u;
      carry := 0
    end
  done;
  digits

(* Pippenger window width: minimize the additions model
   ceil(256/w)·(n + 2·2^(w-1)) — the scatter pass plus the two-pass
   bucket reduction — over the doubling chain shared by all windows.
   (Window widths one either side of the optimum measure within noise
   of each other on batch-sized inputs; the simple model tracks the
   measured optimum across n = 32…512.) *)
let msm_window (n : int) : int =
  let best = ref 1 and best_cost = ref max_int in
  for w = 1 to 13 do
    let windows = ((256 + w - 1) / w) + 1 in
    let cost = windows * (n + (2 * (1 lsl (w - 1)))) in
    if cost < !best_cost then begin
      best_cost := cost;
      best := w
    end
  done;
  !best

let m_msm = Monet_obs.Metrics.counter "ec.point_msm"
let m_msm_terms = Monet_obs.Metrics.counter "ec.point_msm_terms"

(** Normalize many points to Z = 1 with one shared field inversion
    (Montgomery's trick): ~3 field multiplications per point instead
    of one ~30-squaring inversion each. The returned points are equal
    to the inputs as group elements. *)
let normalize_batch (ps : t array) : t array =
  let n = Array.length ps in
  let prefix = Array.make n Fe.one in
  let acc = ref Fe.one in
  for i = 0 to n - 1 do
    prefix.(i) <- !acc;
    acc := Fe.mul !acc ps.(i).z
  done;
  let inv = ref (Fe.inv !acc) in
  let out = Array.make n identity in
  for i = n - 1 downto 0 do
    let zi = Fe.mul !inv prefix.(i) in
    inv := Fe.mul !inv ps.(i).z;
    let x = Fe.mul ps.(i).x zi and y = Fe.mul ps.(i).y zi in
    out.(i) <- { x; y; z = Fe.one; t = Fe.mul x y }
  done;
  out

(** [msm [| (k₀,P₀); … |]] = Σ kᵢ·Pᵢ by bucketed (Pippenger)
    multi-scalar multiplication with signed base-2^w digits, the
    window width chosen from the term count. Sub-linear in n: one
    shared doubling chain and ~n + 2^w additions per window, so
    verifying a batch of n equations costs far less than n
    independent scalar multiplications. Terms with zero scalars or
    identity points are harmless (they scatter nothing). *)
let msm (terms : (Sc.t * t) array) : t =
  let n = Array.length terms in
  if n = 0 then identity
  else if n < 4 then
    (* Below the bucket break-even: Straus-pair the terms. *)
    let rec go i acc =
      if i >= n then acc
      else if i + 1 < n then
        let k0, p0 = terms.(i) and k1, p1 = terms.(i + 1) in
        go (i + 2) (add acc (mul2 k0 p0 k1 p1))
      else
        let k, p = terms.(i) in
        add acc (mul k p)
    in
    go 0 identity
  else begin
    Monet_obs.Metrics.bump m_msm;
    Monet_obs.Metrics.add m_msm_terms n;
    let w = msm_window n in
    let half = 1 lsl (w - 1) in
    let digits = Array.map (fun (k, _) -> signed_digits ~w k) terms in
    let nwin = ((256 + w - 1) / w) + 1 in
    (* Normalize the input points once (one shared inversion) and keep
       them in precomputed "Niels" form (y−x, y+x, ±2d·t): the scatter
       adds below are then mixed additions — 7 field multiplications
       instead of the 9 of the unified projective formula — and a
       negated term is free (swap the y∓x legs, take the negated t
       leg). All accumulators (buckets, running sums, the result) are
       mutable working points over preallocated limb buffers, reused
       across every window: a fresh-allocation formula would churn
       ~13 ten-word arrays per addition through the minor heap. *)
    let norm = normalize_batch (Array.map snd terms) in
    let ym = Array.map (fun p -> Fe.sub p.y p.x) norm in
    let yp = Array.map (fun p -> Fe.add p.y p.x) norm in
    let td = Array.map (fun p -> Fe.mul p.t d2) norm in
    let tdn = Array.map Fe.neg td in
    let wp_alloc () = (Fe.alloc (), Fe.alloc (), Fe.alloc (), Fe.alloc ()) in
    (* Shared scratch for the formulas below; no call nests another. *)
    let s0 = Fe.alloc () and s1 = Fe.alloc () and s2 = Fe.alloc ()
    and s3 = Fe.alloc () and s4 = Fe.alloc () and s5 = Fe.alloc ()
    and s6 = Fe.alloc () and s7 = Fe.alloc () in
    (* acc += Niels form of ±norm(i); add-2008-hwcd-3 mixed. *)
    let add_niels_into ((ax, ay, az, at) : Fe.t * Fe.t * Fe.t * Fe.t) (i : int)
        (positive : bool) : unit =
      let ymi = if positive then ym.(i) else yp.(i) in
      let ypi = if positive then yp.(i) else ym.(i) in
      let tdi = if positive then td.(i) else tdn.(i) in
      Fe.sub_into s0 ay ax;
      Fe.mul_into s0 s0 ymi;
      Fe.add_into s1 ay ax;
      Fe.mul_into s1 s1 ypi;
      Fe.mul_into s2 at tdi;
      Fe.add_into s3 az az;
      Fe.sub_into s4 s1 s0;
      Fe.sub_into s5 s3 s2;
      Fe.add_into s6 s3 s2;
      Fe.add_into s7 s1 s0;
      Fe.mul_into ax s4 s5;
      Fe.mul_into ay s6 s7;
      Fe.mul_into at s4 s7;
      Fe.mul_into az s5 s6
    in
    (* r += q; unified add-2008-hwcd-3 (r and q must not alias). *)
    let add_wp_into ((rx, ry, rz, rt) : Fe.t * Fe.t * Fe.t * Fe.t)
        ((qx, qy, qz, qt) : Fe.t * Fe.t * Fe.t * Fe.t) : unit =
      Fe.sub_into s0 ry rx;
      Fe.sub_into s1 qy qx;
      Fe.mul_into s0 s0 s1;
      Fe.add_into s1 ry rx;
      Fe.add_into s2 qy qx;
      Fe.mul_into s1 s1 s2;
      Fe.mul_into s2 rt d2;
      Fe.mul_into s2 s2 qt;
      Fe.add_into s3 rz rz;
      Fe.mul_into s3 s3 qz;
      Fe.sub_into s4 s1 s0;
      Fe.sub_into s5 s3 s2;
      Fe.add_into s6 s3 s2;
      Fe.add_into s7 s1 s0;
      Fe.mul_into rx s4 s5;
      Fe.mul_into ry s6 s7;
      Fe.mul_into rt s4 s7;
      Fe.mul_into rz s5 s6
    in
    (* acc := 2·acc; dbl-2008-hwcd. *)
    let double_into ((ax, ay, az, at) : Fe.t * Fe.t * Fe.t * Fe.t) : unit =
      Fe.sq_into s0 ax;
      Fe.sq_into s1 ay;
      Fe.sq_into s2 az;
      Fe.add_into s2 s2 s2;
      Fe.neg_into s3 s0;
      Fe.add_into s4 ax ay;
      Fe.sq_into s4 s4;
      Fe.sub_into s4 s4 s0;
      Fe.sub_into s4 s4 s1;
      Fe.add_into s5 s3 s1;
      Fe.sub_into s6 s5 s2;
      Fe.sub_into s7 s3 s1;
      Fe.mul_into ax s4 s6;
      Fe.mul_into ay s5 s7;
      Fe.mul_into at s4 s7;
      Fe.mul_into az s6 s5
    in
    let store_into ((bx, by, bz, bt) : Fe.t * Fe.t * Fe.t * Fe.t) (i : int)
        (positive : bool) : unit =
      let p = norm.(i) in
      if positive then begin
        Fe.copy_into bx p.x;
        Fe.copy_into bt p.t
      end
      else begin
        Fe.neg_into bx p.x;
        Fe.neg_into bt p.t
      end;
      Fe.copy_into by p.y;
      Fe.copy_into bz p.z
    in
    let copy_wp ((dx, dy, dz, dt) : Fe.t * Fe.t * Fe.t * Fe.t)
        ((sx, sy, sz, st) : Fe.t * Fe.t * Fe.t * Fe.t) : unit =
      Fe.copy_into dx sx;
      Fe.copy_into dy sy;
      Fe.copy_into dz sz;
      Fe.copy_into dt st
    in
    let buckets = Array.init (half + 1) (fun _ -> wp_alloc ()) in
    let occ = Array.make (half + 1) false in
    let running = wp_alloc () and total = wp_alloc () and acc = wp_alloc () in
    let has_acc = ref false in
    for j = nwin - 1 downto 0 do
      if !has_acc then
        for _ = 1 to w do
          double_into acc
        done;
      (* Scatter this window's digits into |digit| buckets, tracking
         the highest bucket touched so the reduction sweep only walks
         the populated prefix. First store into an empty bucket is a
         copy, not an addition. *)
      let hi = ref 0 in
      for i = 0 to n - 1 do
        let d = digits.(i).(j) in
        if d <> 0 then begin
          let b = abs d in
          if occ.(b) then add_niels_into buckets.(b) i (d > 0)
          else begin
            store_into buckets.(b) i (d > 0);
            occ.(b) <- true
          end;
          if b > !hi then hi := b
        end
      done;
      if !hi > 0 then begin
        (* Σ b·bucket[b] via the running-sum trick, skipping empty
           buckets (sparse with short — e.g. 128-bit randomizer —
           coefficients, where half the windows scatter nothing). *)
        let has_run = ref false and has_tot = ref false in
        for b = !hi downto 1 do
          if occ.(b) then begin
            if !has_run then add_wp_into running buckets.(b)
            else begin
              copy_wp running buckets.(b);
              has_run := true
            end;
            occ.(b) <- false
          end;
          if !has_run then
            if !has_tot then add_wp_into total running
            else begin
              copy_wp total running;
              has_tot := true
            end
        done;
        if !has_acc then add_wp_into acc total
        else begin
          copy_wp acc total;
          has_acc := true
        end
      end
    done;
    if not !has_acc then identity
    else
      let ax, ay, az, at = acc in
      { x = Fe.copy ax; y = Fe.copy ay; z = Fe.copy az; t = Fe.copy at }
  end

let is_on_curve (p : t) : bool =
  (* -x² + y² = z² + d t²  and  t·z = x·y (extended-coordinate invariants) *)
  let x2 = Fe.sq p.x and y2 = Fe.sq p.y and z2 = Fe.sq p.z in
  Fe.equal (Fe.sub y2 x2) (Fe.add z2 (Fe.mul Fe.d (Fe.sq p.t)))
  && Fe.equal (Fe.mul p.t p.z) (Fe.mul p.x p.y)

(** Multiply by the cofactor 8. *)
let mul_cofactor (p : t) : t = double (double (double p))

(** In the prime-order subgroup? (ℓ·P = O) *)
let in_prime_subgroup (p : t) : bool = is_identity (mul Sc.l p)

(* --- Encoding --- *)

(* Compress affine (x, y): 32-byte little-endian y, sign of x on top. *)
let encode_affine (x : Fe.t) (y : Fe.t) : string =
  let bytes = Bytes.of_string (Fe.to_bytes_le y) in
  if Fe.is_odd x then
    Bytes.set bytes 31 (Char.chr (Char.code (Bytes.get bytes 31) lor 0x80));
  Bytes.unsafe_to_string bytes

let encode (p : t) : string =
  let zi = Fe.inv p.z in
  encode_affine (Fe.mul p.x zi) (Fe.mul p.y zi)

(** Encode many points with one shared field inversion (Montgomery's
    trick: prefix-product the Zᵢ, invert the total, walk back). A
    single {!Fe.inv} is ~30 field squarings' worth of work, so batch
    verifiers that hash dozens of points into challenges pay ~3 field
    multiplications per point here instead of one inversion each. *)
let encode_batch (ps : t array) : string array =
  Array.map (fun (p : t) -> encode_affine p.x p.y) (normalize_batch ps)

let decode (s : string) : t option =
  if String.length s <> 32 then None
  else begin
    let sign = Char.code s.[31] lsr 7 = 1 in
    let ybytes =
      String.init 32 (fun i -> if i = 31 then Char.chr (Char.code s.[31] land 0x7f) else s.[i])
    in
    if Bn.compare (Bn.of_bytes_le ybytes) Fe.p >= 0 then None
    else begin
      let y = Fe.of_bytes_le ybytes in
      let y2 = Fe.sq y in
      let u = Fe.sub y2 Fe.one and v = Fe.add (Fe.mul Fe.d y2) Fe.one in
      (* x² = u/v *)
      match Fe.sqrt (Fe.mul u (Fe.inv v)) with
      | None -> None
      | Some x ->
          if Fe.is_zero x && sign then None
          else begin
            let x = if Fe.is_odd x <> sign then Fe.neg x else x in
            Some (of_affine x y)
          end
    end
  end

let decode_exn (s : string) : t =
  match decode s with Some p -> p | None -> invalid_arg "Point.decode_exn"

(** Hash arbitrary data to a point of the prime-order subgroup by
    try-and-increment then cofactor clearing. This substitutes for
    Monero's Elligator-style hash_to_ec; it has the same interface and
    the same uniform-point-with-unknown-dlog property. *)
let h2p_cache : (string, t) Hashtbl.t = Hashtbl.create 64
let h2p_mu = Mutex.create ()

let hash_to_point (tag : string) (data : string) : t =
  let rec go ctr =
    let h = Monet_hash.Hash.tagged ("h2p/" ^ tag) [ data; string_of_int ctr ] in
    match decode (String.sub h 0 32) with
    | Some p ->
        let p8 = mul_cofactor p in
        if is_identity p8 then go (ctr + 1) else p8
    | None -> go (ctr + 1)
  in
  let key = tag ^ "\x00" ^ data in
  match Mutex.protect h2p_mu (fun () -> Hashtbl.find_opt h2p_cache key) with
  | Some p -> p
  | None ->
      let p = go 0 in
      Mutex.protect h2p_mu (fun () ->
          if Hashtbl.length h2p_cache > 65536 then Hashtbl.reset h2p_cache;
          Hashtbl.add h2p_cache key p);
      p

let pp ppf p = Format.fprintf ppf "%s" (Monet_util.Hex.encode (encode p))
