(** The ed25519 base field GF(2^255 - 19) as fixed ten-limb
    radix-2^25.5 field elements ("donna"/ref10 style) over native
    63-bit OCaml ints.

    Limb [i] carries bits [⌈25.5·i⌉, ⌈25.5·(i+1)⌉): even limbs are 26
    bits wide, odd limbs 25. Limbs are *signed* and values are kept
    loosely reduced: every add/sub/mul/sq ends in a carry sweep that
    bounds even limbs by ~2^25 and odd limbs by ~2^24 in magnitude, so
    each of the ten product terms of {!mul} stays below 2^59 — far from
    the ±2^62 native-int edge. Reduction is lazy: values are only
    canonicalized mod p by {!to_bytes_le} (and everything derived from
    it: {!equal}, {!is_odd}, {!to_bn}).

    Conversions to/from {!Bn.t} exist solely at the module boundary
    (constants, DRBG sampling, hex, the point decoder's canonicity
    check); no arithmetic in here ever allocates a [Bn.t].

    The previous [Bn]-backed implementation survives as {!Fe_ref} and
    is differentially tested against this one in test/test_ec.ml. *)

type t = int array (* exactly 10 limbs, little-endian *)

(* EC-op provenance (DESIGN.md §3.8): one branch per call while the
   registry is off, proven unmeasurable by the @bench-smoke guard. *)
let m_mul = Monet_obs.Metrics.counter "ec.fe_mul"
let m_sq = Monet_obs.Metrics.counter "ec.fe_sq"

let p : Bn.t =
  Bn.of_hex "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"

let zero : t = Array.make 10 0
let one : t = [| 1; 0; 0; 0; 0; 0; 0; 0; 0; 0 |]
let bytes_len = 32

(* Carry sweep (ref10 order): after it, |h0| ≤ 2^25, |h_odd| ≤ 2^24+1,
   |h_even| ≤ 2^25, and the top carry has been folded back into h0 via
   2^255 ≡ 19. Rounding biases make [asr] behave as a nearest-integer
   division, so limbs end up centred around 0. *)
let carry_into (d : t) h0 h1 h2 h3 h4 h5 h6 h7 h8 h9 : unit =
  let b26 = 1 lsl 25 and b25 = 1 lsl 24 in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h1 + b25) asr 25 in
  let h2 = h2 + c and h1 = h1 - (c lsl 25) in
  let c = (h5 + b25) asr 25 in
  let h6 = h6 + c and h5 = h5 - (c lsl 25) in
  let c = (h2 + b26) asr 26 in
  let h3 = h3 + c and h2 = h2 - (c lsl 26) in
  let c = (h6 + b26) asr 26 in
  let h7 = h7 + c and h6 = h6 - (c lsl 26) in
  let c = (h3 + b25) asr 25 in
  let h4 = h4 + c and h3 = h3 - (c lsl 25) in
  let c = (h7 + b25) asr 25 in
  let h8 = h8 + c and h7 = h7 - (c lsl 25) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h8 + b26) asr 26 in
  let h9 = h9 + c and h8 = h8 - (c lsl 26) in
  let c = (h9 + b25) asr 25 in
  let h0 = h0 + (19 * c) and h9 = h9 - (c lsl 25) in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  Array.unsafe_set d 0 h0;
  Array.unsafe_set d 1 h1;
  Array.unsafe_set d 2 h2;
  Array.unsafe_set d 3 h3;
  Array.unsafe_set d 4 h4;
  Array.unsafe_set d 5 h5;
  Array.unsafe_set d 6 h6;
  Array.unsafe_set d 7 h7;
  Array.unsafe_set d 8 h8;
  Array.unsafe_set d 9 h9

let carry_make h0 h1 h2 h3 h4 h5 h6 h7 h8 h9 : t =
  let d = Array.make 10 0 in
  carry_into d h0 h1 h2 h3 h4 h5 h6 h7 h8 h9;
  d

(* --- In-place variants ----------------------------------------------
   The [_into] operations write their (carried, loosely-reduced)
   result into a caller-owned buffer instead of allocating: the MSM
   inner loops ({!Point.msm}) run thousands of additions per call, and
   the ~13 ten-word arrays a fresh-allocation formula produces per
   point addition are pure GC churn there. The destination may alias
   an operand — every limb is read before anything is written. *)

let alloc () : t = Array.make 10 0
let copy (a : t) : t = Array.copy a
let copy_into (d : t) (a : t) : unit = Array.blit a 0 d 0 10

let add_into (d : t) (a : t) (b : t) : unit =
  let ga = Array.unsafe_get a and gb = Array.unsafe_get b in
  carry_into d
    (ga 0 + gb 0) (ga 1 + gb 1) (ga 2 + gb 2) (ga 3 + gb 3) (ga 4 + gb 4)
    (ga 5 + gb 5) (ga 6 + gb 6) (ga 7 + gb 7) (ga 8 + gb 8) (ga 9 + gb 9)

let sub_into (d : t) (a : t) (b : t) : unit =
  let ga = Array.unsafe_get a and gb = Array.unsafe_get b in
  carry_into d
    (ga 0 - gb 0) (ga 1 - gb 1) (ga 2 - gb 2) (ga 3 - gb 3) (ga 4 - gb 4)
    (ga 5 - gb 5) (ga 6 - gb 6) (ga 7 - gb 7) (ga 8 - gb 8) (ga 9 - gb 9)

let neg_into (d : t) (a : t) : unit =
  for i = 0 to 9 do
    Array.unsafe_set d i (- Array.unsafe_get a i)
  done

let add (a : t) (b : t) : t =
  let d = alloc () in
  add_into d a b;
  d

let sub (a : t) (b : t) : t =
  let d = alloc () in
  sub_into d a b;
  d

(* Limb-wise negation preserves the loose-reduction bounds. *)
let neg (a : t) : t = Array.map (fun x -> -x) a

(* Schoolbook 10x10 with the wrap 2^255 ≡ 19 folded into the
   coefficients: a term f_i·g_j with i+j ≥ 10 picks up a 19, and one
   with i, j both odd a 2 (the radix-2^25.5 exponent ⌈25.5i⌉+⌈25.5j⌉
   overshoots ⌈25.5(i+j)⌉ by one exactly then). Straight-line ref10
   row order; every sum is ≤ 10·2^59 in magnitude. *)
let mul_into (d : t) (f : t) (g : t) : unit =
  Monet_obs.Metrics.bump m_mul;
  let f0 = Array.unsafe_get f 0 and f1 = Array.unsafe_get f 1
  and f2 = Array.unsafe_get f 2 and f3 = Array.unsafe_get f 3
  and f4 = Array.unsafe_get f 4 and f5 = Array.unsafe_get f 5
  and f6 = Array.unsafe_get f 6 and f7 = Array.unsafe_get f 7
  and f8 = Array.unsafe_get f 8 and f9 = Array.unsafe_get f 9 in
  let g0 = Array.unsafe_get g 0 and g1 = Array.unsafe_get g 1
  and g2 = Array.unsafe_get g 2 and g3 = Array.unsafe_get g 3
  and g4 = Array.unsafe_get g 4 and g5 = Array.unsafe_get g 5
  and g6 = Array.unsafe_get g 6 and g7 = Array.unsafe_get g 7
  and g8 = Array.unsafe_get g 8 and g9 = Array.unsafe_get g 9 in
  let g1_19 = 19 * g1 and g2_19 = 19 * g2 and g3_19 = 19 * g3
  and g4_19 = 19 * g4 and g5_19 = 19 * g5 and g6_19 = 19 * g6
  and g7_19 = 19 * g7 and g8_19 = 19 * g8 and g9_19 = 19 * g9 in
  let f1_2 = 2 * f1 and f3_2 = 2 * f3 and f5_2 = 2 * f5 and f7_2 = 2 * f7
  and f9_2 = 2 * f9 in
  let h0 =
    (f0 * g0) + (f1_2 * g9_19) + (f2 * g8_19) + (f3_2 * g7_19) + (f4 * g6_19)
    + (f5_2 * g5_19) + (f6 * g4_19) + (f7_2 * g3_19) + (f8 * g2_19)
    + (f9_2 * g1_19)
  and h1 =
    (f0 * g1) + (f1 * g0) + (f2 * g9_19) + (f3 * g8_19) + (f4 * g7_19)
    + (f5 * g6_19) + (f6 * g5_19) + (f7 * g4_19) + (f8 * g3_19) + (f9 * g2_19)
  and h2 =
    (f0 * g2) + (f1_2 * g1) + (f2 * g0) + (f3_2 * g9_19) + (f4 * g8_19)
    + (f5_2 * g7_19) + (f6 * g6_19) + (f7_2 * g5_19) + (f8 * g4_19)
    + (f9_2 * g3_19)
  and h3 =
    (f0 * g3) + (f1 * g2) + (f2 * g1) + (f3 * g0) + (f4 * g9_19) + (f5 * g8_19)
    + (f6 * g7_19) + (f7 * g6_19) + (f8 * g5_19) + (f9 * g4_19)
  and h4 =
    (f0 * g4) + (f1_2 * g3) + (f2 * g2) + (f3_2 * g1) + (f4 * g0)
    + (f5_2 * g9_19) + (f6 * g8_19) + (f7_2 * g7_19) + (f8 * g6_19)
    + (f9_2 * g5_19)
  and h5 =
    (f0 * g5) + (f1 * g4) + (f2 * g3) + (f3 * g2) + (f4 * g1) + (f5 * g0)
    + (f6 * g9_19) + (f7 * g8_19) + (f8 * g7_19) + (f9 * g6_19)
  and h6 =
    (f0 * g6) + (f1_2 * g5) + (f2 * g4) + (f3_2 * g3) + (f4 * g2) + (f5_2 * g1)
    + (f6 * g0) + (f7_2 * g9_19) + (f8 * g8_19) + (f9_2 * g7_19)
  and h7 =
    (f0 * g7) + (f1 * g6) + (f2 * g5) + (f3 * g4) + (f4 * g3) + (f5 * g2)
    + (f6 * g1) + (f7 * g0) + (f8 * g9_19) + (f9 * g8_19)
  and h8 =
    (f0 * g8) + (f1_2 * g7) + (f2 * g6) + (f3_2 * g5) + (f4 * g4) + (f5_2 * g3)
    + (f6 * g2) + (f7_2 * g1) + (f8 * g0) + (f9_2 * g9_19)
  and h9 =
    (f0 * g9) + (f1 * g8) + (f2 * g7) + (f3 * g6) + (f4 * g5) + (f5 * g4)
    + (f6 * g3) + (f7 * g2) + (f8 * g1) + (f9 * g0)
  in
  (* Carry chain inlined: without flambda the 10-argument call to
     [carry_make] costs real time on this, the hottest path. *)
  let b26 = 1 lsl 25 and b25 = 1 lsl 24 in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h1 + b25) asr 25 in
  let h2 = h2 + c and h1 = h1 - (c lsl 25) in
  let c = (h5 + b25) asr 25 in
  let h6 = h6 + c and h5 = h5 - (c lsl 25) in
  let c = (h2 + b26) asr 26 in
  let h3 = h3 + c and h2 = h2 - (c lsl 26) in
  let c = (h6 + b26) asr 26 in
  let h7 = h7 + c and h6 = h6 - (c lsl 26) in
  let c = (h3 + b25) asr 25 in
  let h4 = h4 + c and h3 = h3 - (c lsl 25) in
  let c = (h7 + b25) asr 25 in
  let h8 = h8 + c and h7 = h7 - (c lsl 25) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h8 + b26) asr 26 in
  let h9 = h9 + c and h8 = h8 - (c lsl 26) in
  let c = (h9 + b25) asr 25 in
  let h0 = h0 + (19 * c) and h9 = h9 - (c lsl 25) in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  Array.unsafe_set d 0 h0;
  Array.unsafe_set d 1 h1;
  Array.unsafe_set d 2 h2;
  Array.unsafe_set d 3 h3;
  Array.unsafe_set d 4 h4;
  Array.unsafe_set d 5 h5;
  Array.unsafe_set d 6 h6;
  Array.unsafe_set d 7 h7;
  Array.unsafe_set d 8 h8;
  Array.unsafe_set d 9 h9

let mul (f : t) (g : t) : t =
  let d = Array.make 10 0 in
  mul_into d f g;
  d

(* Dedicated squaring: the symmetric terms merge, ~half the limb
   products of [mul]. *)
let sq_into (d : t) (f : t) : unit =
  Monet_obs.Metrics.bump m_sq;
  let f0 = Array.unsafe_get f 0 and f1 = Array.unsafe_get f 1
  and f2 = Array.unsafe_get f 2 and f3 = Array.unsafe_get f 3
  and f4 = Array.unsafe_get f 4 and f5 = Array.unsafe_get f 5
  and f6 = Array.unsafe_get f 6 and f7 = Array.unsafe_get f 7
  and f8 = Array.unsafe_get f 8 and f9 = Array.unsafe_get f 9 in
  let f0_2 = 2 * f0 and f1_2 = 2 * f1 and f2_2 = 2 * f2 and f3_2 = 2 * f3
  and f4_2 = 2 * f4 and f5_2 = 2 * f5 and f6_2 = 2 * f6 and f7_2 = 2 * f7 in
  let f5_38 = 38 * f5 and f6_19 = 19 * f6 and f7_38 = 38 * f7
  and f8_19 = 19 * f8 and f9_38 = 38 * f9 in
  let h0 =
    (f0 * f0) + (f1_2 * f9_38) + (f2_2 * f8_19) + (f3_2 * f7_38)
    + (f4_2 * f6_19) + (f5 * f5_38)
  and h1 =
    (f0_2 * f1) + (f2 * f9_38) + (f3_2 * f8_19) + (f4 * f7_38) + (f5_2 * f6_19)
  and h2 =
    (f0_2 * f2) + (f1_2 * f1) + (f3_2 * f9_38) + (f4_2 * f8_19)
    + (f5_2 * f7_38) + (f6 * f6_19)
  and h3 =
    (f0_2 * f3) + (f1_2 * f2) + (f4 * f9_38) + (f5_2 * f8_19) + (f6 * f7_38)
  and h4 =
    (f0_2 * f4) + (f1_2 * f3_2) + (f2 * f2) + (f5_2 * f9_38) + (f6_2 * f8_19)
    + (f7 * f7_38)
  and h5 =
    (f0_2 * f5) + (f1_2 * f4) + (f2_2 * f3) + (f6 * f9_38) + (f7_2 * f8_19)
  and h6 =
    (f0_2 * f6) + (f1_2 * f5_2) + (f2_2 * f4) + (f3_2 * f3) + (f7_2 * f9_38)
    + (f8 * f8_19)
  and h7 =
    (f0_2 * f7) + (f1_2 * f6) + (f2_2 * f5) + (f3_2 * f4) + (f8 * f9_38)
  and h8 =
    (f0_2 * f8) + (f1_2 * f7_2) + (f2_2 * f6) + (f3_2 * f5_2) + (f4 * f4)
    + (f9 * f9_38)
  and h9 = (f0_2 * f9) + (f1_2 * f8) + (f2_2 * f7) + (f3_2 * f6) + (f4_2 * f5)
  in
  (* Same inlined carry chain as [mul]. *)
  let b26 = 1 lsl 25 and b25 = 1 lsl 24 in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h1 + b25) asr 25 in
  let h2 = h2 + c and h1 = h1 - (c lsl 25) in
  let c = (h5 + b25) asr 25 in
  let h6 = h6 + c and h5 = h5 - (c lsl 25) in
  let c = (h2 + b26) asr 26 in
  let h3 = h3 + c and h2 = h2 - (c lsl 26) in
  let c = (h6 + b26) asr 26 in
  let h7 = h7 + c and h6 = h6 - (c lsl 26) in
  let c = (h3 + b25) asr 25 in
  let h4 = h4 + c and h3 = h3 - (c lsl 25) in
  let c = (h7 + b25) asr 25 in
  let h8 = h8 + c and h7 = h7 - (c lsl 25) in
  let c = (h4 + b26) asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = (h8 + b26) asr 26 in
  let h9 = h9 + c and h8 = h8 - (c lsl 26) in
  let c = (h9 + b25) asr 25 in
  let h0 = h0 + (19 * c) and h9 = h9 - (c lsl 25) in
  let c = (h0 + b26) asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  Array.unsafe_set d 0 h0;
  Array.unsafe_set d 1 h1;
  Array.unsafe_set d 2 h2;
  Array.unsafe_set d 3 h3;
  Array.unsafe_set d 4 h4;
  Array.unsafe_set d 5 h5;
  Array.unsafe_set d 6 h6;
  Array.unsafe_set d 7 h7;
  Array.unsafe_set d 8 h8;
  Array.unsafe_set d 9 h9

let sq (f : t) : t =
  let d = Array.make 10 0 in
  sq_into d f;
  d

(* --- Canonical encoding (the only place full reduction happens) --- *)

(** Canonical 32-byte little-endian encoding of the value mod p
    (top bit always clear). Works for any loosely-reduced input,
    negative limbs included: [q] below is ⌊(h + 19·sign slack)/2^255⌋,
    so h + 19q - q·2^255 lands in [0, p). *)
let to_bytes_le (h : t) : string =
  let h0 = h.(0) and h1 = h.(1) and h2 = h.(2) and h3 = h.(3) and h4 = h.(4)
  and h5 = h.(5) and h6 = h.(6) and h7 = h.(7) and h8 = h.(8) and h9 = h.(9) in
  let q = ((19 * h9) + (1 lsl 24)) asr 25 in
  let q = (h0 + q) asr 26 in
  let q = (h1 + q) asr 25 in
  let q = (h2 + q) asr 26 in
  let q = (h3 + q) asr 25 in
  let q = (h4 + q) asr 26 in
  let q = (h5 + q) asr 25 in
  let q = (h6 + q) asr 26 in
  let q = (h7 + q) asr 25 in
  let q = (h8 + q) asr 26 in
  let q = (h9 + q) asr 25 in
  let h0 = h0 + (19 * q) in
  let c = h0 asr 26 in
  let h1 = h1 + c and h0 = h0 - (c lsl 26) in
  let c = h1 asr 25 in
  let h2 = h2 + c and h1 = h1 - (c lsl 25) in
  let c = h2 asr 26 in
  let h3 = h3 + c and h2 = h2 - (c lsl 26) in
  let c = h3 asr 25 in
  let h4 = h4 + c and h3 = h3 - (c lsl 25) in
  let c = h4 asr 26 in
  let h5 = h5 + c and h4 = h4 - (c lsl 26) in
  let c = h5 asr 25 in
  let h6 = h6 + c and h5 = h5 - (c lsl 25) in
  let c = h6 asr 26 in
  let h7 = h7 + c and h6 = h6 - (c lsl 26) in
  let c = h7 asr 25 in
  let h8 = h8 + c and h7 = h7 - (c lsl 25) in
  let c = h8 asr 26 in
  let h9 = h9 + c and h8 = h8 - (c lsl 26) in
  let h9 = h9 - ((h9 asr 25) lsl 25) in
  let s = Bytes.create 32 in
  let set i v = Bytes.unsafe_set s i (Char.unsafe_chr (v land 0xff)) in
  set 0 h0;
  set 1 (h0 lsr 8);
  set 2 (h0 lsr 16);
  set 3 ((h0 lsr 24) lor (h1 lsl 2));
  set 4 (h1 lsr 6);
  set 5 (h1 lsr 14);
  set 6 ((h1 lsr 22) lor (h2 lsl 3));
  set 7 (h2 lsr 5);
  set 8 (h2 lsr 13);
  set 9 ((h2 lsr 21) lor (h3 lsl 5));
  set 10 (h3 lsr 3);
  set 11 (h3 lsr 11);
  set 12 ((h3 lsr 19) lor (h4 lsl 6));
  set 13 (h4 lsr 2);
  set 14 (h4 lsr 10);
  set 15 (h4 lsr 18);
  set 16 h5;
  set 17 (h5 lsr 8);
  set 18 (h5 lsr 16);
  set 19 ((h5 lsr 24) lor (h6 lsl 1));
  set 20 (h6 lsr 7);
  set 21 (h6 lsr 15);
  set 22 ((h6 lsr 23) lor (h7 lsl 3));
  set 23 (h7 lsr 5);
  set 24 (h7 lsr 13);
  set 25 ((h7 lsr 21) lor (h8 lsl 4));
  set 26 (h8 lsr 4);
  set 27 (h8 lsr 12);
  set 28 ((h8 lsr 20) lor (h9 lsl 6));
  set 29 (h9 lsr 2);
  set 30 (h9 lsr 10);
  set 31 (h9 lsr 18);
  Bytes.unsafe_to_string s

(* Unpack 255 bits of a 32-byte little-endian string (bit 255, if any,
   is the caller's problem — the boundary conversions below only feed
   canonical values in). *)
let of_bytes32 (s : string) : t =
  let b i = Char.code (String.unsafe_get s i) in
  let load3 i = b i lor (b (i + 1) lsl 8) lor (b (i + 2) lsl 16) in
  let load4 i = load3 i lor (b (i + 3) lsl 24) in
  carry_make (load4 0)
    (load3 4 lsl 6)
    (load3 7 lsl 5)
    (load3 10 lsl 3)
    (load3 13 lsl 2)
    (load4 16)
    (load3 20 lsl 7)
    (load3 23 lsl 5)
    (load3 26 lsl 4)
    ((load3 29 land 0x7fffff) lsl 2)

(* --- Bn boundary (cold paths: constants, sampling, hex) --- *)

let ctx = Bn.Barrett.create p
let of_bn (x : Bn.t) : t = of_bytes32 (Bn.to_bytes_le (Bn.Barrett.reduce ctx x) ~len:32)
let to_bn (a : t) : Bn.t = Bn.of_bytes_le (to_bytes_le a)

let of_bytes_le (s : string) : t =
  if String.length s = 32 && Char.code s.[31] < 0x80 then of_bytes32 s
  else of_bn (Bn.of_bytes_le s)

let of_int (n : int) : t = of_bn (Bn.of_int n)
let of_hex (s : string) : t = of_bn (Bn.of_hex s)
let to_hex (a : t) : string = Bn.to_hex (to_bn a)

let random (g : Monet_hash.Drbg.t) : t =
  (* Uniform via wide reduction: 2x modulus width of entropy. *)
  of_bn (Bn.of_bytes_le (Monet_hash.Drbg.bytes g (2 * bytes_len)))

(* --- Comparisons (via the canonical encoding) --- *)

(* Field elements reach equality checks carrying secret-derived
   coordinates (e.g. point equality during verification); compare the
   canonical encodings in constant time so the scan never exits at
   the first differing byte. *)
let zero_bytes = String.make 32 '\000'

let equal (a : t) (b : t) : bool =
  Monet_util.Bytes_ext.ct_equal (to_bytes_le a) (to_bytes_le b)

let is_zero (a : t) : bool = Monet_util.Bytes_ext.ct_equal (to_bytes_le a) zero_bytes
let is_odd (a : t) : bool = Char.code (to_bytes_le a).[0] land 1 = 1

(* --- Exponentiation (binary ladder over a Bn exponent) --- *)

let pow (base : t) (e : Bn.t) : t =
  let n = Bn.num_bits e in
  let acc = ref one and b = ref base in
  for i = 0 to n - 1 do
    if Bn.testbit e i then acc := mul !acc !b;
    if i < n - 1 then b := sq !b
  done;
  !acc

let inv (a : t) : t = pow a (Bn.sub p (Bn.of_int 2))

(* --- Curve constants --- *)

let d = of_hex "52036cee2b6ffe738cc740797779e89800700a4d4141d8ab75eb4dca135978a3"
let sqrt_m1 = of_hex "2b8324804fc1df0b2b4d00993dfbd7a72f431806ad2fe478c4ee1b274a0ea0b0"

(** Square root mod p (p = 5 mod 8): candidate = a^((p+3)/8), fixed up
    by sqrt(-1) when needed. Returns [None] if [a] is a non-residue. *)
let sqrt (a : t) : t option =
  let e = Bn.shift_right_bits (Bn.add p (Bn.of_int 3)) 3 in
  let x = pow a e in
  let x2 = sq x in
  if equal x2 a then Some x
  else begin
    let x' = mul x sqrt_m1 in
    if equal (sq x') a then Some x' else None
  end

let pp ppf a = Format.pp_print_string ppf (to_hex a)
