(** Channel-party client for the Key Escrow Service: commit
    construction (cross-signed channel states), contract calls and the
    dispute workflow. *)

module Wire = Monet_util.Wire
open Monet_ec

type party = {
  p_addr : string; (* script-chain address *)
  p_kp : Monet_sig.Sig_core.keypair; (* commit-signing key (registered in the instance) *)
}

let make_party (g : Monet_hash.Drbg.t) ~(addr : string) : party =
  { p_addr = addr; p_kp = Monet_sig.Sig_core.gen g }

(** Each channel update cross-signs (id, state, digest); the two halves
    assemble into a commit accepted by φ_ke. *)
let sign_commit_half (g : Monet_hash.Drbg.t) (p : party) ~(id : int) ~(state : int)
    ~(digest : string) : Monet_sig.Sig_core.signature =
  Monet_sig.Sig_core.sign g p.p_kp (Kes_contract.commit_message ~id ~state ~digest)

let assemble_commit ~(state : int) ~(digest : string)
    ~(sig_a : Monet_sig.Sig_core.signature) ~(sig_b : Monet_sig.Sig_core.signature) :
    Kes_contract.commit =
  { Kes_contract.cm_state = state; cm_digest = digest; cm_sig_a = sig_a; cm_sig_b = sig_b }

(* --- contract call helpers --- *)

(* Each helper runs inside a "kes.<method>" span, so the script.gas
   charged by Chain.call lands in that span's ops — gas attributed to
   the protocol phase that spent it (DESIGN.md §3.8). *)

let call_deploy_instance (chain : Monet_script.Chain.t) ~(contract : int) (p : party)
    ~(id : int) ~(vk_a : Point.t) ~(vk_b : Point.t) ~(escrow_digest : string) :
    Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.deploy_instance" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Wire.write_fixed w (Point.encode vk_a);
  Wire.write_fixed w (Point.encode vk_b);
  Wire.write_bytes w escrow_digest;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"deploy_instance"
    ~args:(Wire.contents w)

let call_add_ok chain ~contract (p : party) ~(id : int) : Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.add_ok" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"add_ok"
    ~args:(Wire.contents w)

let call_set_timer chain ~contract (p : party) ~(id : int) ~(tau : int)
    (c : Kes_contract.commit) : Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.set_timer" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Wire.write_u64 w tau;
  Kes_contract.encode_commit w c;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"set_timer"
    ~args:(Wire.contents w)

let call_resp chain ~contract (p : party) ~(id : int) (c : Kes_contract.commit) :
    Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.resp" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Kes_contract.encode_commit w c;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"resp"
    ~args:(Wire.contents w)

let call_timeout chain ~contract (p : party) ~(id : int) : Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.timeout" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"timeout"
    ~args:(Wire.contents w)

let call_close chain ~contract (p : party) ~(id : int) (c : Kes_contract.commit) :
    Monet_script.Chain.receipt =
  Monet_obs.Trace.span "kes.close" @@ fun () ->
  let w = Wire.create_writer () in
  Wire.write_u32 w id;
  Kes_contract.encode_commit w c;
  Monet_script.Chain.call chain ~caller:p.p_addr ~contract ~meth:"close"
    ~args:(Wire.contents w)

(** Did the chain emit a KeyRelease for [id] to [addr]? *)
let key_released (events : Monet_script.Chain.event list) ~(id : int) ~(addr : string)
    : bool =
  List.exists
    (fun (e : Monet_script.Chain.event) ->
      e.ev_name = "KeyRelease" && e.ev_data = Printf.sprintf "%d/%s" id addr)
    events
