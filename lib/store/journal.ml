(* Write-ahead journal over Backend blobs. See journal.mli. *)

module Bx = Monet_util.Bytes_ext

let seg_magic = "MONETWAL1" (* 9 bytes *)
let ckpt_magic = "MONETCKPT1" (* 10 bytes *)
let header_len = String.length seg_magic + 4
let seg_header (gen : int) = seg_magic ^ Bx.le32_of_int gen
let seg_blob name gen = Printf.sprintf "%s.seg-%08d" name gen
let ckpt_blob name gen = Printf.sprintf "%s.ckpt-%08d" name gen

type t = {
  j_backend : Backend.t;
  j_name : string;
  j_seg_limit : int;
  mutable j_gen : int;
  mutable j_seg_bytes : int;
}

type fsck_report = {
  fk_checkpoint_gen : int option;
  fk_segments : int;
  fk_records : int;
  fk_torn : bool;
  fk_torn_bytes : int;
  fk_bad_checkpoints : int;
}

type replay = {
  rp_checkpoint : string option;
  rp_records : string list;
  rp_report : fsck_report;
}

(* --- blob-name bookkeeping --------------------------------------- *)

let parse_gens ~(name : string) ~(kind : string) (blobs : string list) :
    int list =
  let prefix = name ^ "." ^ kind ^ "-" in
  let plen = String.length prefix in
  List.filter_map
    (fun b ->
      if String.length b > plen && String.sub b 0 plen = prefix then
        int_of_string_opt (String.sub b plen (String.length b - plen))
      else None)
    blobs

(* --- decoding ----------------------------------------------------- *)

let decode_ckpt ~(gen : int) (blob : string) : string option =
  let m = String.length ckpt_magic in
  if
    String.length blob < m + 12
    || String.sub blob 0 m <> ckpt_magic
    || Bx.int_of_le32 blob m <> gen
  then None
  else
    let crc = Bx.int_of_le32 blob (m + 4) in
    let len = Bx.int_of_le32 blob (m + 8) in
    if String.length blob <> m + 12 + len then None
    else if Crc32.digest_sub blob ~pos:(m + 12) ~len <> crc then None
    else Some (String.sub blob (m + 12) len)

type seg_scan = {
  ss_records : string list; (* in order *)
  ss_good_len : int; (* valid prefix, including the header *)
  ss_torn : bool;
  ss_torn_bytes : int;
}

let scan_segment ~(gen : int) (blob : string) : seg_scan =
  let n = String.length blob in
  let m = String.length seg_magic in
  if n < header_len || String.sub blob 0 m <> seg_magic
     || Bx.int_of_le32 blob m <> gen
  then { ss_records = []; ss_good_len = 0; ss_torn = true; ss_torn_bytes = n }
  else
    let records = ref [] in
    let pos = ref header_len in
    let torn = ref false in
    let continue = ref true in
    while !continue do
      if !pos = n then continue := false
      else if !pos + 8 > n then (torn := true; continue := false)
      else
        let rlen = Bx.int_of_le32 blob !pos in
        let crc = Bx.int_of_le32 blob (!pos + 4) in
        if !pos + 8 + rlen > n then (torn := true; continue := false)
        else if Crc32.digest_sub blob ~pos:(!pos + 8) ~len:rlen <> crc then (
          torn := true;
          continue := false)
        else (
          records := String.sub blob (!pos + 8) rlen :: !records;
          pos := !pos + 8 + rlen)
    done;
    { ss_records = List.rev !records; ss_good_len = !pos; ss_torn = !torn;
      ss_torn_bytes = n - !pos }

(* --- shared open/fsck scan ---------------------------------------- *)

(* Scan checkpoint + segments. When [truncate] is set, physically cut a
   torn tail back to its last valid record (re-seeding the segment
   header if even that was damaged) so later appends continue from a
   clean prefix. Returns the replay plus the generation and byte length
   of the segment appends should continue in. *)
let scan ~(truncate : bool) (b : Backend.t) ~(name : string) :
    replay * int * int =
  let blobs = Backend.list b in
  let ckpt_gens = List.sort (fun x y -> compare y x) (parse_gens ~name ~kind:"ckpt" blobs) in
  let seg_gens = List.sort compare (parse_gens ~name ~kind:"seg" blobs) in
  let bad_ckpts = ref 0 in
  let rec pick = function
    | [] -> None
    | g :: rest -> (
        match Backend.read b (ckpt_blob name g) with
        | None -> incr bad_ckpts; pick rest
        | Some blob -> (
            match decode_ckpt ~gen:g blob with
            | Some payload -> Some (g, payload)
            | None -> incr bad_ckpts; pick rest))
  in
  let ckpt = pick ckpt_gens in
  let base = match ckpt with Some (g, _) -> g | None -> 0 in
  let live_segs = List.filter (fun g -> g >= base) seg_gens in
  let records = ref [] in
  let torn = ref false in
  let torn_bytes = ref 0 in
  let last_gen = ref base in
  let last_len = ref header_len in
  let fresh = live_segs = [] in
  List.iter
    (fun g ->
      if not !torn then
        match Backend.read b (seg_blob name g) with
        | None -> ()
        | Some blob ->
            let sc = scan_segment ~gen:g blob in
            records := List.rev_append sc.ss_records !records;
            last_gen := g;
            if sc.ss_torn then (
              torn := true;
              torn_bytes := sc.ss_torn_bytes;
              let keep =
                if sc.ss_good_len >= header_len then
                  String.sub blob 0 sc.ss_good_len
                else seg_header g
              in
              last_len := String.length keep;
              if truncate then Backend.write b (seg_blob name g) keep)
            else last_len := String.length blob)
    live_segs;
  if fresh && truncate then
    Backend.write b (seg_blob name base) (seg_header base);
  let report =
    { fk_checkpoint_gen = Option.map fst ckpt;
      fk_segments = List.length live_segs;
      fk_records = List.length !records;
      fk_torn = !torn;
      fk_torn_bytes = !torn_bytes;
      fk_bad_checkpoints = !bad_ckpts }
  in
  ( { rp_checkpoint = Option.map snd ckpt;
      rp_records = List.rev !records;
      rp_report = report },
    !last_gen,
    !last_len )

(* --- public API ---------------------------------------------------- *)

let default_seg_limit = 1 lsl 16

let open_ ?(seg_limit = default_seg_limit) (b : Backend.t) ~(name : string) :
    t * replay =
  let replay, gen, seg_bytes = scan ~truncate:true b ~name in
  ( { j_backend = b; j_name = name; j_seg_limit = seg_limit; j_gen = gen;
      j_seg_bytes = seg_bytes },
    replay )

let fsck (b : Backend.t) ~(name : string) : fsck_report =
  let replay, _, _ = scan ~truncate:false b ~name in
  replay.rp_report

let append (t : t) (payload : string) : unit =
  if t.j_seg_bytes >= t.j_seg_limit then (
    t.j_gen <- t.j_gen + 1;
    Backend.write t.j_backend (seg_blob t.j_name t.j_gen) (seg_header t.j_gen);
    t.j_seg_bytes <- header_len);
  let frame =
    Bx.le32_of_int (String.length payload)
    ^ Bx.le32_of_int (Crc32.digest payload)
    ^ payload
  in
  Backend.append t.j_backend (seg_blob t.j_name t.j_gen) frame;
  t.j_seg_bytes <- t.j_seg_bytes + String.length frame

let checkpoint (t : t) (payload : string) : unit =
  let g = t.j_gen + 1 in
  let blob =
    ckpt_magic ^ Bx.le32_of_int g
    ^ Bx.le32_of_int (Crc32.digest payload)
    ^ Bx.le32_of_int (String.length payload)
    ^ payload
  in
  Backend.write t.j_backend (ckpt_blob t.j_name g) blob;
  Backend.write t.j_backend (seg_blob t.j_name g) (seg_header g);
  t.j_gen <- g;
  t.j_seg_bytes <- header_len;
  (* Compact only once the new checkpoint is durably in place; if the
     process died during the writes above, the old generation is still
     complete on disk and replay falls back to it. *)
  if not (Backend.crashed t.j_backend) then (
    let blobs = Backend.list t.j_backend in
    List.iter
      (fun g' -> if g' < g then Backend.delete t.j_backend (ckpt_blob t.j_name g'))
      (parse_gens ~name:t.j_name ~kind:"ckpt" blobs);
    List.iter
      (fun g' -> if g' < g then Backend.delete t.j_backend (seg_blob t.j_name g'))
      (parse_gens ~name:t.j_name ~kind:"seg" blobs))

let gen (t : t) : int = t.j_gen
let seg_bytes (t : t) : int = t.j_seg_bytes
