(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven
    with an eagerly built table so OCaml domains share it without
    synchronization. {!Journal} checksums each write-ahead record with
    it so a torn or bit-flipped tail is detected on replay instead of
    being decoded as protocol state. *)

(** [digest_sub s ~pos ~len] is the CRC-32 of the [len] bytes of [s]
    starting at [pos]. The caller must ensure the range is in bounds. *)
val digest_sub : string -> pos:int -> len:int -> int

(** The CRC-32 of the whole string. *)
val digest : string -> int
