(** Append-only write-ahead journal with segment rotation, checkpoint
    compaction and torn-tail detection.

    A journal named [n] lives in a {!Backend.t} as a set of blobs:

    {v
      n.ckpt-<gen>   "MONETCKPT1" | u32 gen | u32 crc | u32 len | payload
      n.seg-<gen>    "MONETWAL1"  | u32 gen | record*
      record         u32 len | u32 crc32(payload) | payload
    v}

    A checkpoint at generation [g] summarizes every record before it;
    replay is "newest valid checkpoint + every record in segments with
    generation ≥ [g], in order". Compaction (deleting older
    generations) happens only after the new checkpoint blob is durably
    written, so a crash at any point leaves a recoverable history.

    Torn tails. A record whose frame is incomplete or whose CRC
    mismatches marks the end of the valid prefix: {!open_} reports it
    ([fk_torn]), physically truncates the segment back to the last
    valid record, and replays only the prefix — a torn tail is never
    silently accepted as state. A checkpoint blob that fails its CRC is
    skipped ([fk_bad_checkpoints]) and replay falls back to the
    previous generation. *)

type t

(** What {!open_} and {!fsck} found on the medium. *)
type fsck_report = {
  fk_checkpoint_gen : int option;  (** newest valid checkpoint *)
  fk_segments : int;  (** live segments (generation ≥ checkpoint) *)
  fk_records : int;  (** valid records replayed *)
  fk_torn : bool;  (** a torn tail was detected (and truncated) *)
  fk_torn_bytes : int;  (** bytes discarded at the torn tail *)
  fk_bad_checkpoints : int;  (** checkpoint blobs skipped as corrupt *)
}

(** Replayable state: checkpoint payload (if any), then records. *)
type replay = {
  rp_checkpoint : string option;
  rp_records : string list;
  rp_report : fsck_report;
}

(** Open (or create) journal [name] in the backend and replay it.
    Truncates a torn tail. [seg_limit] bounds segment size in bytes
    before {!append} rotates to a new segment (default 64 KiB). *)
val open_ : ?seg_limit:int -> Backend.t -> name:string -> t * replay

(** Read-only integrity scan: like {!open_}'s replay pass but without
    truncating anything. *)
val fsck : Backend.t -> name:string -> fsck_report

(** Append one record durably (subject to the backend's crash
    model — after a simulated kill the append is a no-op). *)
val append : t -> string -> unit

(** Write a checkpoint summarizing all state, start a fresh segment,
    and compact older generations. *)
val checkpoint : t -> string -> unit

(** Current segment generation (diagnostics). *)
val gen : t -> int

(** Bytes in the current segment, header included (diagnostics). *)
val seg_bytes : t -> int
