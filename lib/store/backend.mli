(** Named-blob durable storage with a simulated process boundary.

    A backend is "the disk plus the process writing to it". Two
    implementations share one interface: {!mem} keeps blobs in a
    hashtable (used by tests and the chaos harness, where thousands of
    kill/restart schedules must run in-process), {!dir} maps each blob
    to a file in a directory (used by [monet_cli channel run/recover]).

    Crash model. A backend carries an injectable {e partial-write
    failpoint}: a byte budget consumed by {!append} and {!write}. The
    write that exhausts the budget persists only its prefix (appends)
    or nothing (full-blob writes, which model write-temp-then-rename)
    and flips the backend into the [crashed] state — from then on every
    durable operation is a silent no-op, exactly as if the process had
    been killed mid-[write(2)]. {!revive} models the restarted process
    re-opening the same storage: durable bytes are kept, the crash flag
    and failpoint are cleared. Readers above this layer ({!Journal})
    must therefore treat a torn tail as a first-class outcome. *)

type t

(** In-memory backend: blobs live in the heap, crash simulation only. *)
val mem : unit -> t

(** Filesystem backend rooted at the given directory (created if
    missing). Full-blob writes go through a temp file and rename. *)
val dir : string -> (t, string) result

(** [read t name] is the current contents of blob [name], or [None]
    if it does not exist (or a filesystem error occurred — see
    {!io_error}). Reads are allowed even after a crash: the restarted
    process reads what actually reached the medium. *)
val read : t -> string -> string option

(** Replace blob [name] atomically. No-op once [crashed]. *)
val write : t -> string -> string -> unit

(** Append to blob [name], creating it if missing. No-op once
    [crashed]; may persist only a prefix when the failpoint fires. *)
val append : t -> string -> string -> unit

(** Remove blob [name] if present. No-op once [crashed]. *)
val delete : t -> string -> unit

(** All blob names, sorted. *)
val list : t -> string list

(** Arm the partial-write failpoint: after [after] more bytes of
    appended/written payload, the writing process "dies" mid-write. *)
val set_failpoint : t -> after:int -> unit

(** Disarm the failpoint without touching the crash flag. *)
val clear_failpoint : t -> unit

(** Whether the simulated process died mid-write (failpoint fired). *)
val crashed : t -> bool

(** Last filesystem error, if any ([dir] backend only); sticky. *)
val io_error : t -> string option

(** Model a process restart over the same storage: clear the crash
    flag and failpoint, keep every durable byte. *)
val revive : t -> unit
