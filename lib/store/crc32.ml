(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Used by {!Journal} to checksum each write-ahead record so a torn
    or bit-flipped tail is detected on replay instead of being decoded
    as protocol state. Table-driven; the table is computed eagerly at
    module initialization (before any [Domain.spawn] can happen) and
    never written afterwards, so domains share it without
    synchronization. It was a [lazy] once: two domains racing the
    first [Lazy.force] can raise [CamlinternalLazy.Undefined], the
    exact hazard the lint domain-safety pass now flags. *)

let table : int array =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

(** [digest_sub s ~pos ~len] is the CRC-32 of the [len] bytes of [s]
    starting at [pos]. The caller must ensure the range is in bounds. *)
let digest_sub (s : string) ~(pos : int) ~(len : int) : int =
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest (s : string) : int = digest_sub s ~pos:0 ~len:(String.length s)
