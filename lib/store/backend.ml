(* Named-blob storage with a simulated process boundary. See backend.mli. *)

type sink =
  | Mem of (string, Buffer.t) Hashtbl.t
  | Dir of string

type t = {
  sink : sink;
  mutable fp_budget : int option;
  mutable crashed : bool;
  mutable io_error : string option;
}

let mem () : t =
  { sink = Mem (Hashtbl.create 16); fp_budget = None; crashed = false;
    io_error = None }

let dir (path : string) : (t, string) result =
  match
    if Sys.file_exists path then
      if Sys.is_directory path then Ok ()
      else Error (path ^ ": exists and is not a directory")
    else (
      Unix.mkdir path 0o755;
      Ok ())
  with
  | Ok () ->
      Ok { sink = Dir path; fp_budget = None; crashed = false; io_error = None }
  | Error e -> Error e
  | exception Unix.Unix_error (e, _, _) ->
      Error (path ^ ": " ^ Unix.error_message e)
  | exception Sys_error e -> Error e

let io_fail (t : t) (what : string) (e : string) =
  t.io_error <- Some (what ^ ": " ^ e)

let path_of (d : string) (name : string) =
  (* Blob names are flat identifiers; a path separator would escape the
     directory, so reject it loudly via the io_error channel. *)
  if String.contains name '/' then None else Some (Filename.concat d name)

let read (t : t) (name : string) : string option =
  match t.sink with
  | Mem h -> Option.map Buffer.contents (Hashtbl.find_opt h name)
  | Dir d -> (
      match path_of d name with
      | None -> io_fail t name "blob name contains '/'"; None
      | Some p -> (
          if not (Sys.file_exists p) then None
          else
            try
              let ic = open_in_bin p in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              Some s
            with Sys_error e | Failure e -> io_fail t name e; None))

(* Raw durable effects, after the crash/failpoint gate. *)
let raw_append (t : t) (name : string) (data : string) : unit =
  match t.sink with
  | Mem h ->
      let b =
        match Hashtbl.find_opt h name with
        | Some b -> b
        | None ->
            let b = Buffer.create 256 in
            Hashtbl.replace h name b;
            b
      in
      Buffer.add_string b data
  | Dir d -> (
      match path_of d name with
      | None -> io_fail t name "blob name contains '/'"
      | Some p -> (
          try
            let oc =
              open_out_gen [ Open_binary; Open_append; Open_creat ] 0o644 p
            in
            output_string oc data;
            close_out oc
          with Sys_error e -> io_fail t name e))

let raw_write (t : t) (name : string) (data : string) : unit =
  match t.sink with
  | Mem h ->
      let b = Buffer.create (String.length data) in
      Buffer.add_string b data;
      Hashtbl.replace h name b
  | Dir d -> (
      match path_of d name with
      | None -> io_fail t name "blob name contains '/'"
      | Some p -> (
          let tmp = p ^ ".tmp" in
          try
            let oc = open_out_bin tmp in
            output_string oc data;
            close_out oc;
            Sys.rename tmp p
          with Sys_error e -> io_fail t name e))

(* Consume [n] bytes of failpoint budget; return how many of them may
   still reach storage (None = all of them). *)
let spend (t : t) (n : int) : int option =
  match t.fp_budget with
  | None -> None
  | Some budget ->
      if n <= budget then (
        t.fp_budget <- Some (budget - n);
        None)
      else (
        t.fp_budget <- Some 0;
        Some budget)

let append (t : t) (name : string) (data : string) : unit =
  if t.crashed then ()
  else
    match spend t (String.length data) with
    | None -> raw_append t name data
    | Some keep ->
        (* Simulated kill -9 mid-write: the prefix reaches the medium,
           the process is gone before the rest does. *)
        if keep > 0 then raw_append t name (String.sub data 0 keep);
        t.crashed <- true

let write (t : t) (name : string) (data : string) : unit =
  if t.crashed then ()
  else
    match spend t (String.length data) with
    | None -> raw_write t name data
    | Some _ ->
        (* Full-blob writes model write-temp-then-rename: a crash mid-way
           loses the new content entirely but keeps the old blob. *)
        t.crashed <- true

let delete (t : t) (name : string) : unit =
  if t.crashed then ()
  else
    match t.sink with
    | Mem h -> Hashtbl.remove h name
    | Dir d -> (
        match path_of d name with
        | None -> io_fail t name "blob name contains '/'"
        | Some p -> (
            try if Sys.file_exists p then Sys.remove p
            with Sys_error e -> io_fail t name e))

let list (t : t) : string list =
  match t.sink with
  | Mem h ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])
  | Dir d -> (
      try
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> not (Filename.check_suffix f ".tmp"))
        |> List.sort compare
      with Sys_error e -> io_fail t "list" e; [])

let set_failpoint (t : t) ~(after : int) : unit =
  t.fp_budget <- Some (max 0 after)

let clear_failpoint (t : t) : unit = t.fp_budget <- None
let crashed (t : t) : bool = t.crashed
let io_error (t : t) : string option = t.io_error

let revive (t : t) : unit =
  t.crashed <- false;
  t.fp_budget <- None
