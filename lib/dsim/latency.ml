(** Network latency models. The paper's headline configuration is a 4G
    WAN with 60 ms one-way latency; the sweep experiments vary this. *)

type t =
  | Fixed of float (* ms *)
  | Uniform of float * float
  | Normal of float * float (* mean, stddev; resampled while negative *)

let wan_4g = Fixed 60.0
let lan = Fixed 0.5

let sample (g : Monet_hash.Drbg.t) (t : t) : float =
  match t with
  | Fixed ms -> ms
  | Uniform (lo, hi) -> lo +. ((hi -. lo) *. Monet_hash.Drbg.float g)
  | Normal (mu, sigma) ->
      (* Box-Muller, rejecting negative draws. Clamping them to 0
         instead would pile the whole left tail into a point mass at
         0 and bias the sample mean above mu; resampling draws from
         the conditional law given latency >= 0, which for the
         configurations of interest (mu a few sigma above 0) is
         indistinguishable from the unconstrained normal. The retry
         count is bounded so pathological parameters (mu << 0)
         still terminate. *)
      let rec draw attempts =
        let u1 = max 1e-12 (Monet_hash.Drbg.float g)
        and u2 = Monet_hash.Drbg.float g in
        let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
        let x = mu +. (sigma *. z) in
        if x >= 0.0 then x else if attempts >= 64 then 0.0 else draw (attempts + 1)
      in
      draw 0

let mean = function
  | Fixed ms -> ms
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Normal (mu, _) -> mu
