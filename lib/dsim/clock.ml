(** Discrete-event simulation clock and event queue.

    Time is simulated milliseconds (float). Events are callbacks on a
    binary min-heap; [run_until] drains the queue. Protocol layers mix
    *measured* computation time (wall clock of the real crypto) with
    *simulated* network latency, as the paper's evaluation does. *)

type event = { at : float; seq : int; run : unit -> unit }

type t = {
  mutable now : float;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int; (* FIFO tie-break for simultaneous events *)
}

let create () =
  { now = 0.0; heap = Array.make 64 { at = 0.0; seq = 0; run = ignore }; size = 0;
    next_seq = 0 }

let now (c : t) = c.now

let before (a : event) (b : event) = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let schedule (c : t) ~(delay : float) (run : unit -> unit) : unit =
  if delay < 0.0 then invalid_arg "Clock.schedule: negative delay";
  let ev = { at = c.now +. delay; seq = c.next_seq; run } in
  c.next_seq <- c.next_seq + 1;
  if c.size = Array.length c.heap then begin
    let bigger = Array.make (2 * c.size) ev in
    Array.blit c.heap 0 bigger 0 c.size;
    c.heap <- bigger
  end;
  (* sift up *)
  let i = ref c.size in
  c.size <- c.size + 1;
  c.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before c.heap.(!i) c.heap.(parent) then begin
      let t = c.heap.(parent) in
      c.heap.(parent) <- c.heap.(!i);
      c.heap.(!i) <- t;
      i := parent
    end
    else continue := false
  done

let pop (c : t) : event option =
  if c.size = 0 then None
  else begin
    let top = c.heap.(0) in
    c.size <- c.size - 1;
    c.heap.(0) <- c.heap.(c.size);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < c.size && before c.heap.(l) c.heap.(!smallest) then smallest := l;
      if r < c.size && before c.heap.(r) c.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let t = c.heap.(!smallest) in
        c.heap.(!smallest) <- c.heap.(!i);
        c.heap.(!i) <- t;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let m_events = Monet_obs.Metrics.counter "dsim.events"

(** Run events until the queue is empty or [limit] is reached. While
    draining, the queue's simulated time is installed as the tracer's
    sim clock, so every span/event recorded inside an event callback
    carries sim-time next to wall-time. *)
let run (c : t) ?(limit = max_float) () : unit =
  let continue = ref true in
  Monet_obs.Trace.set_sim_clock (Some (fun () -> c.now));
  Fun.protect
    ~finally:(fun () -> Monet_obs.Trace.set_sim_clock None)
    (fun () ->
      while !continue do
        match pop c with
        | None -> continue := false
        | Some ev ->
            if ev.at > limit then begin
              (* Push back and stop: the event stays for a later run. *)
              schedule c ~delay:(ev.at -. c.now) ev.run;
              c.now <- limit;
              continue := false
            end
            else begin
              c.now <- ev.at;
              Monet_obs.Metrics.bump m_events;
              ev.run ()
            end
      done)

(** Advance the clock without events (models pure computation time). *)
let advance (c : t) (ms : float) : unit =
  if ms < 0.0 then invalid_arg "Clock.advance: negative";
  c.now <- c.now +. ms
