(** Verifiable Consecutive One-way Function (paper Definition 1 and
    Fig. 3), instantiated per DESIGN.md §3.2.

    - SWGen(λ): sample y⁰ ← Z_ℓ, statement Y⁰ = y⁰·G.
    - NewSW((Yⁱ, yⁱ), pp): yⁱ⁺¹ = pp^{yⁱ} mod ℓ, Yⁱ⁺¹ = yⁱ⁺¹·G, plus a
      Stadler double-discrete-log proof of the step.
    - CVrfy((Yⁱ, Yⁱ⁺¹), Pⁱ⁺¹): verify the Stadler proof.

    Properties (tested in test/test_vcof.ml):
    - consecutiveness: forward derivation is deterministic and public
      given the witness and pp;
    - consecutive verifiability: proofs bind exactly the (Yⁱ, Yⁱ⁺¹)
      pair they were made for;
    - one-wayness: deriving yⁱ from yⁱ⁺¹ is a discrete logarithm in
      Z_ℓ* (no algorithmic trapdoor exists in this code base — there is
      simply no inverse function to call). *)

open Monet_ec

type pair = { stmt : Point.t; wit : Sc.t }

type proof = Monet_sigma.Stadler.proof

let proof_size = Monet_sigma.Stadler.size

(** Default public parameter pp: a fixed public base of Z_ℓ*. *)
let default_pp : Sc.t = Zl.default_base

let sw_gen (g : Monet_hash.Drbg.t) : pair =
  let wit = Sc.random_nonzero g in
  { stmt = Point.mul_base wit; wit }

(** Forward witness derivation (the consecutive one-way function f_c),
    without a proof. This is what a cheated-on channel party uses to
    roll a revealed old witness forward to the latest state. *)
let derive ~(pp : Sc.t) (wit : Sc.t) : Sc.t = Zl.pow pp wit

let rec derive_n ~(pp : Sc.t) (wit : Sc.t) (n : int) : Sc.t =
  if n <= 0 then wit else derive_n ~pp (derive ~pp wit) (n - 1)

let new_sw ?reps (g : Monet_hash.Drbg.t) (p : pair) ~(pp : Sc.t) : pair * proof =
  let proof, y, y' = Monet_sigma.Stadler.prove ?reps g ~x:p.wit ~h:pp in
  assert (Point.equal y p.stmt);
  ({ stmt = y'; wit = derive ~pp p.wit }, proof)

let c_vrfy ~(pp : Sc.t) ~(prev : Point.t) ~(next : Point.t) (proof : proof) : bool =
  Monet_sigma.Stadler.verify ~h:pp ~y:prev ~y':next proof

(** CVrfy over a burst of steps (channel-open batches, published
    chains): one random-linear-combination multi-scalar multiplication
    instead of per-step verification. Entries are (Yⁱ, Yⁱ⁺¹, Pⁱ⁺¹)
    triples; they need not form a single chain. *)
let c_vrfy_batch ~(pp : Sc.t) (steps : (Point.t * Point.t * proof) array) : bool =
  Monet_sigma.Stadler.verify_batch ~h:pp steps

(** Check that a bare witness opens a statement. *)
let opens (p : Point.t) (wit : Sc.t) : bool = Point.equal p (Point.mul_base wit)

(** Re-randomization for on-chain unidentifiability (paper §IV-C):
    S' = S + r·G, w' = w + r. The pair remains valid (w'·G = S') but is
    unlinkable to the escrowed original. *)
let randomize (p : pair) ~(r : Sc.t) : pair =
  { stmt = Point.add p.stmt (Point.mul_base r); wit = Sc.add p.wit r }
