(** Verifiable Consecutive One-way Function — paper Definition 1.

    A VCOF generates statement–witness pairs in a verifiable chain:
    anyone holding (Yⁱ, yⁱ) can derive (Yⁱ⁺¹, yⁱ⁺¹) and prove the step,
    but inverting a step is computationally hard. Instantiated as
    yⁱ⁺¹ = pp^{yⁱ} mod ℓ over ed25519 statements Yⁱ = yⁱ·G, with
    Stadler double-discrete-log step proofs (DESIGN.md §3.2). *)

open Monet_ec

type pair = { stmt : Point.t; wit : Sc.t }
(** A statement–witness pair (Y, y) with Y = y·G. *)

type proof = Monet_sigma.Stadler.proof
(** A consecutiveness proof P^{i+1} binding (Yⁱ, Yⁱ⁺¹). *)

val proof_size : proof -> int
(** Serialized size in bytes. *)

val default_pp : Sc.t
(** The default public parameter pp: a fixed public base of Z_ℓ*. *)

val sw_gen : Monet_hash.Drbg.t -> pair
(** [SWGen(λ)]: sample a fresh root pair. *)

val derive : pp:Sc.t -> Sc.t -> Sc.t
(** The consecutive one-way function f_c on witnesses: one forward
    step. Public — this is what lets a cheated-on channel party roll a
    revealed old witness forward. *)

val derive_n : pp:Sc.t -> Sc.t -> int -> Sc.t
(** [derive_n ~pp w n] applies {!derive} [n] times. *)

val new_sw :
  ?reps:int -> Monet_hash.Drbg.t -> pair -> pp:Sc.t -> pair * proof
(** [NewSW((Yⁱ, yⁱ), pp)]: the next pair plus its step proof. [reps]
    sets the proof's cut-and-choose repetitions (default 80,
    soundness 2⁻⁸⁰). *)

val c_vrfy : pp:Sc.t -> prev:Point.t -> next:Point.t -> proof -> bool
(** [CVrfy((Yⁱ, Yⁱ⁺¹), Pⁱ⁺¹)]: publicly verify one chain step. *)

val c_vrfy_batch : pp:Sc.t -> (Point.t * Point.t * proof) array -> bool
(** Batched CVrfy across (prev, next, proof) triples under one pp:
    a single multi-scalar multiplication replaces per-step
    verification (accepts iff every {!c_vrfy} accepts, except with
    probability 2⁻¹²⁸). *)

val opens : Point.t -> Sc.t -> bool
(** Does a bare witness open a statement (Y = y·G)? *)

val randomize : pair -> r:Sc.t -> pair
(** Re-randomization for on-chain unidentifiability (paper §IV-C):
    S' = S + r·G, w' = w + r. *)
