(** Statement-witness chains with batch precomputation.

    The paper's optimization (§VI, Table I) precomputes a batch of
    statement-witness pairs and their consecutiveness proofs off the
    critical path, so a channel update only costs one adaptor
    (pre-)signature. This module materializes chains, produces the
    batched proofs and verifies a counterparty's batch. *)

open Monet_ec

type t = {
  pp : Sc.t;
  pairs : Vcof.pair array; (* pairs.(i) is state i *)
  proofs : Vcof.proof array; (* proofs.(i) proves step i -> i+1 *)
}

let length (c : t) = Array.length c.pairs
let pair (c : t) (i : int) : Vcof.pair = c.pairs.(i)
let statement (c : t) (i : int) : Point.t = c.pairs.(i).Vcof.stmt
let witness (c : t) (i : int) : Sc.t = c.pairs.(i).Vcof.wit

(** Precompute [n] chain steps from a fresh root. Returns the chain;
    statements and proofs are what gets shared with the counterparty,
    witnesses stay local. *)
let precompute ?reps ?(pp = Vcof.default_pp) (g : Monet_hash.Drbg.t) ~(n : int) : t =
  let root = Vcof.sw_gen g in
  let pairs = Array.make (n + 1) root in
  let proofs =
    Array.init n (fun i ->
        let next, proof = Vcof.new_sw ?reps g pairs.(i) ~pp in
        pairs.(i + 1) <- next;
        proof)
  in
  { pp; pairs; proofs }

(** Witness-only fast precomputation (no proofs): what the paper
    reports as ~0.08 ms per 100 sessions. *)
let precompute_witnesses ?(pp = Vcof.default_pp) (g : Monet_hash.Drbg.t) ~(n : int) :
    Vcof.pair array =
  let root = Vcof.sw_gen g in
  let pairs = Array.make (n + 1) root in
  for i = 1 to n do
    pairs.(i) <-
      { Vcof.wit = Vcof.derive ~pp pairs.(i - 1).Vcof.wit;
        stmt = Point.mul_base (Vcof.derive ~pp pairs.(i - 1).Vcof.wit) }
  done;
  pairs

(** The public view of a chain: statements plus step proofs. *)
type public = { pub_pp : Sc.t; statements : Point.t array; step_proofs : Vcof.proof array }

let publish (c : t) : public =
  {
    pub_pp = c.pp;
    statements = Array.map (fun p -> p.Vcof.stmt) c.pairs;
    step_proofs = c.proofs;
  }

(** Verify every step of a published chain (the counterparty's batch
    verification from the paper's 100-session experiment). *)
let verify_public (p : public) : bool =
  Array.length p.statements = Array.length p.step_proofs + 1
  && Vcof.c_vrfy_batch ~pp:p.pub_pp
       (Array.mapi
          (fun i proof -> (p.statements.(i), p.statements.(i + 1), proof))
          p.step_proofs)

let total_proof_bytes (p : public) : int =
  Array.fold_left (fun acc pr -> acc + Vcof.proof_size pr) 0 p.step_proofs
