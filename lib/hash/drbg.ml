(** Deterministic random byte generator (hash-DRBG over SHA-512).

    Used for all randomness in the library so that tests, simulations
    and benchmarks are reproducible. Seeding from the OS is available
    for callers that want real entropy. *)

type t = { mutable key : string; mutable counter : int }

let create ~(seed : string) : t =
  { key = Sha512.digest ("monet/drbg/seed\x00" ^ seed); counter = 0 }

let of_int (n : int) : t = create ~seed:(string_of_int n)

(* Best-effort OS entropy; falls back to time-based seed. *)
let os_seeded () : t =
  let seed =
    try
      let ic = open_in_bin "/dev/urandom" in
      let s = really_input_string ic 32 in
      close_in ic;
      s
    with _ -> string_of_float (Sys.time ())
  in
  create ~seed

let block (t : t) : string =
  let out = Sha512.digest_list [ t.key; Monet_util.Bytes_ext.le64_of_int t.counter ] in
  t.counter <- t.counter + 1;
  out

let bytes (t : t) (n : int) : string =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (block t)
  done;
  String.sub (Buffer.contents buf) 0 n

(** Uniform integer in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Drbg.int: bound must be positive";
  (* Rejection sampling on 62-bit values to avoid modulo bias. *)
  let rec go () =
    let s = bytes t 8 in
    let v = Monet_util.Bytes_ext.int_of_le64 s 0 land max_int in
    let limit = max_int - (max_int mod bound) in
    if v >= limit then go () else v mod bound
  in
  go ()

let float (t : t) : float =
  let v = int t (1 lsl 53) in
  Stdlib.float_of_int v /. Stdlib.float_of_int (1 lsl 53)

(** Derive an independent child generator, e.g. one per simulated node. *)
let split (t : t) (label : string) : t =
  create ~seed:(block t ^ label)

(** Re-key the generator in place from a fresh seed, discarding all
    prior state. Crash recovery must call this on a restored party's
    generator: replaying the pre-crash stream would re-emit signing
    nonces, and nonce reuse forfeits the channel. *)
let reseed (t : t) ~(seed : string) : unit =
  t.key <- Sha512.digest ("monet/drbg/reseed\x00" ^ seed);
  t.counter <- 0
