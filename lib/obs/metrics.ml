(* Metrics registry: named counters, gauges and histograms with a
   global on/off switch (DESIGN.md §3.8).

   Instruments register their metric once at module-initialization time
   and keep the returned record; the hot-path update functions ([bump],
   [add], [set], [observe]) check the [enabled] flag and do nothing when
   the registry is off, so an instrumented kernel pays one load and one
   conditional branch per update — the cost the @bench-smoke guard in
   bench/ec_bench.ml pins as unmeasurable against the EC baseline. *)

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let enabled = ref false
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let counter (name : string) : counter =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_count = 0 } in
      Hashtbl.replace counters name c;
      c

let gauge (name : string) : gauge =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0 } in
      Hashtbl.replace gauges name g;
      g

let histogram (name : string) : histogram =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0.0; h_min = infinity;
          h_max = neg_infinity }
      in
      Hashtbl.replace histograms name h;
      h

let[@inline] bump (c : counter) : unit =
  if !enabled then c.c_count <- c.c_count + 1

let[@inline] add (c : counter) (n : int) : unit =
  if !enabled then c.c_count <- c.c_count + n

let count (c : counter) : int = c.c_count

let[@inline] set (g : gauge) (v : int) : unit = if !enabled then g.g_value <- v
let gauge_value (g : gauge) : int = g.g_value

let observe (h : histogram) (v : float) : unit =
  if !enabled then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let reset () =
  Hashtbl.iter (fun _ c -> c.c_count <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    histograms

let snapshot () : (string * int) list =
  let items =
    Hashtbl.fold
      (fun name c acc -> if c.c_count > 0 then (name, c.c_count) :: acc else acc)
      counters []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

(* Counters are monotone between resets, so a per-key subtraction of a
   [before] snapshot from an [after] snapshot never goes negative; keys
   absent from [before] count from zero. *)
let diff ~(before : (string * int) list) ~(after : (string * int) list) :
    (string * int) list =
  List.filter_map
    (fun (name, v) ->
      let prev = match List.assoc_opt name before with Some p -> p | None -> 0 in
      if v - prev > 0 then Some (name, v - prev) else None)
    after

let total_count () : int =
  Hashtbl.fold (fun _ c acc -> acc + c.c_count) counters 0

let histogram_snapshot () : (string * (int * float * float * float)) list =
  let items =
    Hashtbl.fold
      (fun name h acc ->
        if h.h_count > 0 then (name, (h.h_count, h.h_sum, h.h_min, h.h_max)) :: acc
        else acc)
      histograms []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items
