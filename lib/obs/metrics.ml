(* Metrics registry: named counters, gauges and histograms with a
   global on/off switch (DESIGN.md §3.8).

   Instruments register their metric once at module-initialization time
   and keep the returned handle; the hot-path update functions ([bump],
   [add], [observe]) check the [enabled] flag and do nothing when the
   registry is off, so an instrumented kernel pays one load and one
   conditional branch per update — the cost the @bench-smoke guard in
   bench/ec_bench.ml pins as unmeasurable against the EC baseline.

   Domain safety: counter and histogram updates land in *domain-local*
   tallies (Domain.DLS) — worker domains spawned by the sharded
   network engine never contend on, or race against, a shared cell.
   Read-side functions ([count], [snapshot], [total_count],
   [histogram_snapshot]) merge every domain's tally at call time.
   Reads concurrent with running workers are best-effort (per-cell
   atomic, no tearing); after [Domain.join] the merge is exact.
   Gauges are last-write-wins and remain single-cell: they are
   main-domain instruments (workers have no meaningful "current"
   value to race over). *)

type counter = { c_name : string; c_id : int }
type gauge = { g_name : string; mutable g_value : int }
type histogram = { h_name : string; h_id : int }

(* Per-domain histogram cells, merged at read. *)
type hstate = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
}

type tally = { mutable t_counts : int array; mutable t_hists : hstate array }

let enabled = ref false

(* Registration tables and the list of every domain's tally, all
   guarded by [mu]. Registration is rare (module init); updates never
   take the lock. *)
let mu = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let n_counters = ref 0
let n_histograms = ref 0
let tallies : tally list ref = ref []

let dls_key : tally Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t = { t_counts = [||]; t_hists = [||] } in
      Mutex.protect mu (fun () -> tallies := t :: !tallies);
      t)

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let counter (name : string) : counter =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_id = !n_counters } in
          incr n_counters;
          Hashtbl.replace counters name c;
          c)

let gauge (name : string) : gauge =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = 0 } in
          Hashtbl.replace gauges name g;
          g)

let histogram (name : string) : histogram =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = { h_name = name; h_id = !n_histograms } in
          incr n_histograms;
          Hashtbl.replace histograms name h;
          h)

(* Grow this domain's tally to cover a late-registered metric id. The
   swap is only ever performed by the owning domain; concurrent
   readers see either the old or the new array, both self-consistent. *)
let ensure_counts (t : tally) (id : int) =
  if id >= Array.length t.t_counts then begin
    let n = max (id + 1) ((2 * Array.length t.t_counts) + 8) in
    let a = Array.make n 0 in
    Array.blit t.t_counts 0 a 0 (Array.length t.t_counts);
    t.t_counts <- a
  end

let fresh_hstate () =
  { hs_count = 0; hs_sum = 0.0; hs_min = infinity; hs_max = neg_infinity }

let ensure_hists (t : tally) (id : int) =
  if id >= Array.length t.t_hists then begin
    let n = max (id + 1) ((2 * Array.length t.t_hists) + 4) in
    let a = Array.init n (fun _ -> fresh_hstate ()) in
    Array.blit t.t_hists 0 a 0 (Array.length t.t_hists);
    t.t_hists <- a
  end

let[@inline] add (c : counter) (n : int) : unit =
  if !enabled then begin
    let t = Domain.DLS.get dls_key in
    ensure_counts t c.c_id;
    t.t_counts.(c.c_id) <- t.t_counts.(c.c_id) + n
  end

let[@inline] bump (c : counter) : unit = add c 1

let with_tallies (f : tally list -> 'a) : 'a =
  let ts = Mutex.protect mu (fun () -> !tallies) in
  f ts

let count (c : counter) : int =
  with_tallies
    (List.fold_left
       (fun acc t ->
         acc + if c.c_id < Array.length t.t_counts then t.t_counts.(c.c_id) else 0)
       0)

let[@inline] set (g : gauge) (v : int) : unit = if !enabled then g.g_value <- v
let gauge_value (g : gauge) : int = g.g_value

let observe (h : histogram) (v : float) : unit =
  if !enabled then begin
    let t = Domain.DLS.get dls_key in
    ensure_hists t h.h_id;
    let hs = t.t_hists.(h.h_id) in
    hs.hs_count <- hs.hs_count + 1;
    hs.hs_sum <- hs.hs_sum +. v;
    if v < hs.hs_min then hs.hs_min <- v;
    if v > hs.hs_max then hs.hs_max <- v
  end

let reset () =
  with_tallies
    (List.iter (fun t ->
         Array.fill t.t_counts 0 (Array.length t.t_counts) 0;
         Array.iter
           (fun hs ->
             hs.hs_count <- 0;
             hs.hs_sum <- 0.0;
             hs.hs_min <- infinity;
             hs.hs_max <- neg_infinity)
           t.t_hists));
  Mutex.protect mu (fun () -> Hashtbl.iter (fun _ g -> g.g_value <- 0) gauges)

let snapshot () : (string * int) list =
  let regs =
    Mutex.protect mu (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) counters [])
  in
  let items =
    List.filter_map
      (fun c ->
        let v = count c in
        if v > 0 then Some (c.c_name, v) else None)
      regs
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

(* Counters are monotone between resets, so a per-key subtraction of a
   [before] snapshot from an [after] snapshot never goes negative; keys
   absent from [before] count from zero. *)
let diff ~(before : (string * int) list) ~(after : (string * int) list) :
    (string * int) list =
  List.filter_map
    (fun (name, v) ->
      let prev = match List.assoc_opt name before with Some p -> p | None -> 0 in
      if v - prev > 0 then Some (name, v - prev) else None)
    after

let total_count () : int =
  with_tallies
    (List.fold_left
       (fun acc t -> Array.fold_left ( + ) acc t.t_counts)
       0)

let histogram_snapshot () : (string * (int * float * float * float)) list =
  let regs =
    Mutex.protect mu (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) histograms [])
  in
  let items =
    List.filter_map
      (fun h ->
        let merged = fresh_hstate () in
        with_tallies
          (List.iter (fun t ->
               if h.h_id < Array.length t.t_hists then begin
                 let hs = t.t_hists.(h.h_id) in
                 merged.hs_count <- merged.hs_count + hs.hs_count;
                 merged.hs_sum <- merged.hs_sum +. hs.hs_sum;
                 if hs.hs_min < merged.hs_min then merged.hs_min <- hs.hs_min;
                 if hs.hs_max > merged.hs_max then merged.hs_max <- hs.hs_max
               end));
        if merged.hs_count > 0 then
          Some (h.h_name, (merged.hs_count, merged.hs_sum, merged.hs_min, merged.hs_max))
        else None)
      regs
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) items
