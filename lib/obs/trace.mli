(** Structured tracing: nested spans, point events, a ring-buffer sink
    and a versioned JSON exporter (schema [monet-trace/1]).

    While disabled (the default), {!span} runs its body after a single
    flag load and {!event} is a no-op; nothing is allocated or
    recorded, so the instrumented protocol stack keeps its benchmark
    numbers (DESIGN.md §3.8 states the full overhead contract).

    The sink is module-global and single-threaded by design, matching
    the repo's deterministic single-threaded simulation. *)

type event = {
  ev_name : string;  (** dot-separated event name, e.g. ["driver.retransmit"] *)
  ev_attrs : (string * string) list;  (** free-form key/value annotations *)
  ev_at_ms : float;  (** wall-clock timestamp (clock milliseconds) *)
  ev_sim_ms : float option;
      (** simulation-clock timestamp, when a sim clock is installed *)
}
(** A point event, attached to the innermost open span (or to the
    top-level loose-event list when no span is open). *)

type span = {
  sp_name : string;  (** dot-separated span name, e.g. ["channel.update"] *)
  sp_attrs : (string * string) list;  (** free-form key/value annotations *)
  sp_start_ms : float;  (** wall-clock start (clock milliseconds) *)
  sp_sim_start_ms : float option;  (** simulation-clock start, if installed *)
  mutable sp_end_ms : float;  (** wall-clock end, set when the span closes *)
  mutable sp_sim_end_ms : float option;  (** simulation-clock end, if installed *)
  mutable sp_events : event list;  (** point events, oldest first once closed *)
  mutable sp_children : span list;  (** child spans, oldest first once closed *)
  mutable sp_ops : (string * int) list;
      (** metrics-counter increase over the span's extent, inclusive of
          children (a parent's counts cover its subtree) *)
  mutable sp_snap : (string * int) list;
      (** internal: metrics snapshot taken at open, cleared at close *)
}
(** One timed region of execution. *)

val json_schema_version : string
(** The schema tag emitted by {!to_json}: ["monet-trace/1"]. *)

val enable : ?capacity:int -> unit -> unit
(** Start tracing with a fresh sink retaining the newest [capacity]
    (default 256) finished root spans. *)

val disable : unit -> unit
(** Stop tracing; recorded spans remain readable via {!roots}. *)

val is_enabled : unit -> bool
(** Whether spans and events are currently recorded. *)

val clear : unit -> unit
(** Drop all recorded spans and events (keeps the enabled state). *)

val set_clock : (unit -> float) -> unit
(** Override the wall clock (milliseconds). Defaults to
    [Sys.time () *. 1000.0] — CPU milliseconds, matching the
    benchmark harness. *)

val set_sim_clock : (unit -> float) option -> unit
(** Install (or remove) a simulation clock; while installed, every
    span and event also records simulation-time stamps.
    [Monet_dsim.Clock.run] installs it for the duration of a drain. *)

val now_ms : unit -> float
(** Current wall-clock reading (clock milliseconds). *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span: the span nests under the
    innermost open span, times [f], and captures the metrics-counter
    delta over its extent. Exception-safe: the span closes even if
    [f] raises. When tracing is disabled this is just [f ()]. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record a point event on the innermost open span (or as a loose
    top-level event when none is open). No-op while disabled. *)

val roots : unit -> span list
(** Finished root spans, oldest first (up to the sink capacity). *)

val loose_events : unit -> event list
(** Events recorded outside any span, oldest first. *)

val duration_ms : span -> float
(** Wall-clock extent of a closed span, in milliseconds. *)

val to_json : unit -> string
(** Export the sink ({!roots} and {!loose_events}) as
    [monet-trace/1] JSON. The output always satisfies
    {!validate_json}. *)

val validate_json : string -> (unit, string) result
(** Structurally validate a [monet-trace/1] document: schema tag,
    span fields (name / start_ms / end_ms / attrs / ops / events /
    children), and event fields, recursively. Exception-free. *)

val ops_summary : ?limit:int -> (string * int) list -> string
(** Render an ops list as ["k=v k=v …"], largest first, keeping at
    most [limit] (default 6) entries and summarizing the rest. *)

val render : span -> string
(** Render a span tree as indented ASCII, one line per span with its
    duration, attributes, op counts and events — the
    [monet_cli trace] output format. *)
