(** Metrics registry: named counters, gauges and histograms behind a
    global enable switch.

    Instrumented modules register a metric once (typically at module
    initialization) and keep the returned handle; the update functions
    are no-ops while the registry is disabled, costing one flag load
    and one branch — the "zero overhead when off" contract of
    DESIGN.md §3.8, enforced by the guard in [bench/ec_bench.ml]. *)

type counter = { c_name : string; mutable c_count : int }
(** A monotone event counter. *)

type gauge = { g_name : string; mutable g_value : int }
(** A last-write-wins instantaneous value. *)

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}
(** A streaming summary (count / sum / min / max) of observed samples. *)

val enable : unit -> unit
(** Turn the registry on: subsequent updates take effect. *)

val disable : unit -> unit
(** Turn the registry off: updates become no-ops (values are kept). *)

val is_enabled : unit -> bool
(** Whether updates currently take effect. *)

val counter : string -> counter
(** [counter name] interns the counter registered under [name],
    creating it at zero on first use. Callable while disabled. *)

val gauge : string -> gauge
(** [gauge name] interns the gauge registered under [name]. *)

val histogram : string -> histogram
(** [histogram name] interns the histogram registered under [name]. *)

val bump : counter -> unit
(** Increment a counter by one (no-op while disabled). *)

val add : counter -> int -> unit
(** Increment a counter by an arbitrary amount (no-op while disabled). *)

val count : counter -> int
(** Current value of a counter. *)

val set : gauge -> int -> unit
(** Set a gauge (no-op while disabled). *)

val gauge_value : gauge -> int
(** Current value of a gauge. *)

val observe : histogram -> float -> unit
(** Record one sample into a histogram (no-op while disabled). *)

val reset : unit -> unit
(** Zero every registered metric (registration handles stay valid). *)

val snapshot : unit -> (string * int) list
(** All non-zero counters as [(name, count)], sorted by name. *)

val diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter increase between two {!snapshot}s; keys absent from
    [before] count from zero, and non-positive deltas are dropped. *)

val total_count : unit -> int
(** Sum of all counter values — zero iff no counter ever fired. *)

val histogram_snapshot : unit -> (string * (int * float * float * float)) list
(** All non-empty histograms as [(name, (count, sum, min, max))],
    sorted by name. *)
