(** Metrics registry: named counters, gauges and histograms behind a
    global enable switch.

    Instrumented modules register a metric once (typically at module
    initialization) and keep the returned handle; the update functions
    are no-ops while the registry is disabled, costing one flag load
    and one branch — the "zero overhead when off" contract of
    DESIGN.md §3.8, enforced by the guard in [bench/ec_bench.ml].

    Counter and histogram updates are *domain-local* (Domain.DLS):
    worker domains spawned by the sharded network engine tally
    privately with no shared mutable cells, and the read-side
    functions merge every domain's tally at call time. After the
    workers are joined the merge is exact; reads concurrent with
    running workers are best-effort. Gauges are last-write-wins
    main-domain instruments. *)

type counter
(** A monotone event counter (domain-local tallies, merged at read). *)

type gauge = { g_name : string; mutable g_value : int }
(** A last-write-wins instantaneous value (main-domain instrument). *)

type histogram
(** A streaming summary (count / sum / min / max) of observed samples,
    tallied domain-locally and merged at read. *)

val enable : unit -> unit
(** Turn the registry on: subsequent updates take effect. *)

val disable : unit -> unit
(** Turn the registry off: updates become no-ops (values are kept). *)

val is_enabled : unit -> bool
(** Whether updates currently take effect. *)

val counter : string -> counter
(** [counter name] interns the counter registered under [name],
    creating it at zero on first use. Callable while disabled. *)

val gauge : string -> gauge
(** [gauge name] interns the gauge registered under [name]. *)

val histogram : string -> histogram
(** [histogram name] interns the histogram registered under [name]. *)

val bump : counter -> unit
(** Increment a counter by one (no-op while disabled). *)

val add : counter -> int -> unit
(** Increment a counter by an arbitrary amount (no-op while disabled). *)

val count : counter -> int
(** Current value of a counter. *)

val set : gauge -> int -> unit
(** Set a gauge (no-op while disabled). *)

val gauge_value : gauge -> int
(** Current value of a gauge. *)

val observe : histogram -> float -> unit
(** Record one sample into a histogram (no-op while disabled). *)

val reset : unit -> unit
(** Zero every registered metric (registration handles stay valid). *)

val snapshot : unit -> (string * int) list
(** All non-zero counters as [(name, count)], sorted by name. *)

val diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter increase between two {!snapshot}s; keys absent from
    [before] count from zero, and non-positive deltas are dropped. *)

val total_count : unit -> int
(** Sum of all counter values — zero iff no counter ever fired. *)

val histogram_snapshot : unit -> (string * (int * float * float * float)) list
(** All non-empty histograms as [(name, (count, sum, min, max))],
    sorted by name. *)
