(* Structured tracing: nested spans, point events, a ring-buffer sink
   and a self-validated JSON exporter (schema monet-trace/1).

   A span records wall-clock start/end (the overridable [clock],
   defaulting to CPU milliseconds to match the repo's Sys.time-based
   harness), optional simulation-clock start/end (installed by
   Monet_dsim.Clock.run for the duration of a drain), its attributes,
   point events, child spans, and the per-counter increase of the
   metrics registry over its extent ([sp_ops], inclusive of children).

   When tracing is disabled, [span name f] is [f ()] after one flag
   load; [event] is a no-op. All sink state is module-global and
   confined to the domain that called [enable]: spans and events from
   worker domains pass through untraced (the span stack and ring are
   an inherently sequential structure — workers report through the
   domain-local metrics registry instead, DESIGN.md §3.10). *)

type event = {
  ev_name : string;
  ev_attrs : (string * string) list;
  ev_at_ms : float;
  ev_sim_ms : float option;
}

type span = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ms : float;
  sp_sim_start_ms : float option;
  mutable sp_end_ms : float;
  mutable sp_sim_end_ms : float option;
  mutable sp_events : event list;
  mutable sp_children : span list;
  mutable sp_ops : (string * int) list;
  mutable sp_snap : (string * int) list; (* metrics snapshot at open *)
}

let json_schema_version = "monet-trace/1"

let enabled = ref false

(* The domain that called [enable]: the only one whose spans/events
   are recorded. *)
let owner : Domain.id option ref = ref None

let[@inline] active () =
  !enabled && (match !owner with Some d -> d = Domain.self () | None -> false)

let clock : (unit -> float) ref = ref (fun () -> Sys.time () *. 1000.0)
let sim_clock : (unit -> float) option ref = ref None

(* Open spans, innermost first. *)
let stack : span list ref = ref []

(* Ring buffer of finished root spans: bounded memory under long
   soaks, newest [capacity] roots retained. *)
let default_capacity = 256
let ring : span option array ref = ref (Array.make default_capacity None)
let ring_pos = ref 0
let ring_len = ref 0

(* Events fired outside any span land here (newest first, capped). *)
let orphans : event list ref = ref []
let orphan_count = ref 0

let set_clock f = clock := f
let set_sim_clock f = sim_clock := f
let now_ms () = !clock ()
let sim_now () = match !sim_clock with Some c -> Some (c ()) | None -> None

let clear () =
  stack := [];
  ring := Array.make (Array.length !ring) None;
  ring_pos := 0;
  ring_len := 0;
  orphans := [];
  orphan_count := 0

let enable ?(capacity = default_capacity) () =
  let capacity = if capacity < 1 then 1 else capacity in
  ring := Array.make capacity None;
  ring_pos := 0;
  ring_len := 0;
  stack := [];
  orphans := [];
  orphan_count := 0;
  owner := Some (Domain.self ());
  enabled := true

let disable () = enabled := false
let is_enabled () = !enabled

let ring_push sp =
  let cap = Array.length !ring in
  !ring.(!ring_pos) <- Some sp;
  ring_pos := (!ring_pos + 1) mod cap;
  if !ring_len < cap then incr ring_len

(* Finished roots, oldest first. *)
let roots () : span list =
  let cap = Array.length !ring in
  let start = (!ring_pos - !ring_len + cap) mod cap in
  let acc = ref [] in
  for i = !ring_len - 1 downto 0 do
    match !ring.((start + i) mod cap) with
    | Some sp -> acc := sp :: !acc
    | None -> ()
  done;
  !acc

let loose_events () : event list = List.rev !orphans

let finish sp =
  sp.sp_end_ms <- now_ms ();
  sp.sp_sim_end_ms <- sim_now ();
  sp.sp_ops <- Metrics.diff ~before:sp.sp_snap ~after:(Metrics.snapshot ());
  sp.sp_snap <- [];
  sp.sp_events <- List.rev sp.sp_events;
  sp.sp_children <- List.rev sp.sp_children;
  match !stack with
  | top :: rest when top == sp -> (
      stack := rest;
      match rest with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> ring_push sp)
  | _ -> () (* tracer was reset mid-span; drop the span *)

let span ?(attrs = []) (name : string) (f : unit -> 'a) : 'a =
  if not (active ()) then f ()
  else begin
    let sp =
      { sp_name = name; sp_attrs = attrs; sp_start_ms = now_ms ();
        sp_sim_start_ms = sim_now (); sp_end_ms = 0.0; sp_sim_end_ms = None;
        sp_events = []; sp_children = []; sp_ops = [];
        sp_snap = Metrics.snapshot () }
    in
    stack := sp :: !stack;
    Fun.protect ~finally:(fun () -> finish sp) f
  end

let event ?(attrs = []) (name : string) : unit =
  if active () then begin
    let ev =
      { ev_name = name; ev_attrs = attrs; ev_at_ms = now_ms ();
        ev_sim_ms = sim_now () }
    in
    match !stack with
    | sp :: _ -> sp.sp_events <- ev :: sp.sp_events
    | [] ->
        if !orphan_count < 4096 then begin
          orphans := ev :: !orphans;
          incr orphan_count
        end
  end

let duration_ms sp = sp.sp_end_ms -. sp.sp_start_ms

(* --- JSON export (schema monet-trace/1) --------------------------- *)

let esc (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
    attrs;
  Buffer.add_char b '}'

let add_event b (ev : event) =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"at_ms\":%.6f" (esc ev.ev_name) ev.ev_at_ms);
  (match ev.ev_sim_ms with
  | Some t -> Buffer.add_string b (Printf.sprintf ",\"sim_ms\":%.6f" t)
  | None -> ());
  Buffer.add_string b ",\"attrs\":";
  add_attrs b ev.ev_attrs;
  Buffer.add_char b '}'

let rec add_span b (sp : span) =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"start_ms\":%.6f,\"end_ms\":%.6f"
       (esc sp.sp_name) sp.sp_start_ms sp.sp_end_ms);
  (match (sp.sp_sim_start_ms, sp.sp_sim_end_ms) with
  | Some s, Some e ->
      Buffer.add_string b
        (Printf.sprintf ",\"sim_start_ms\":%.6f,\"sim_end_ms\":%.6f" s e)
  | _ -> ());
  Buffer.add_string b ",\"attrs\":";
  add_attrs b sp.sp_attrs;
  Buffer.add_string b ",\"ops\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc k) v))
    sp.sp_ops;
  Buffer.add_string b "},\"events\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      add_event b ev)
    sp.sp_events;
  Buffer.add_string b "],\"children\":[";
  List.iteri
    (fun i child ->
      if i > 0 then Buffer.add_char b ',';
      add_span b child)
    sp.sp_children;
  Buffer.add_string b "]}"

let to_json () : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" json_schema_version);
  Buffer.add_string b "  \"clock_unit\": \"ms\",\n";
  Buffer.add_string b "  \"spans\": [";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      add_span b sp)
    (roots ());
  Buffer.add_string b "\n  ],\n  \"events\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      add_event b ev)
    (loose_events ());
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* --- self-validation ------------------------------------------------

   Exception-free recursive-descent parser over the JSON subset the
   exporter emits (objects, arrays, strings, numbers), then a
   structural check of the monet-trace/1 schema. Result-style
   throughout: lib/ is linted with forbid-exn. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float

let parse_json (s : string) : (json, string) result =
  let n = String.length s in
  let rec skip i =
    if i < n then
      match s.[i] with ' ' | '\n' | '\t' | '\r' -> skip (i + 1) | _ -> i
    else i
  in
  let parse_string i =
    (* i points just past the opening quote *)
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then Error "unterminated string"
      else
        match s.[i] with
        | '"' -> Ok (Buffer.contents b, i + 1)
        | '\\' ->
            if i + 1 >= n then Error "dangling escape"
            else begin
              (match s.[i + 1] with
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' -> Buffer.add_char b '?' (* code point not needed here *)
              | c -> Buffer.add_char b c);
              let skip_extra = if s.[i + 1] = 'u' then 4 else 0 in
              go (i + 2 + skip_extra)
            end
        | c ->
            Buffer.add_char b c;
            go (i + 1)
    in
    go i
  in
  let parse_number i =
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec stop j = if j < n && num_char s.[j] then stop (j + 1) else j in
    let j = stop i in
    match float_of_string_opt (String.sub s i (j - i)) with
    | Some f when Float.is_finite f -> Ok (J_num f, j)
    | _ -> Error "bad number"
  in
  let rec parse_value i : (json * int, string) result =
    let i = skip i in
    if i >= n then Error "unexpected end of input"
    else
      match s.[i] with
      | '{' -> parse_obj (i + 1) []
      | '[' -> parse_arr (i + 1) []
      | '"' -> (
          match parse_string (i + 1) with
          | Ok (v, i) -> Ok (J_str v, i)
          | Error e -> Error e)
      | '-' | '0' .. '9' -> parse_number i
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  and parse_obj i acc =
    let i = skip i in
    if i >= n then Error "unterminated object"
    else if s.[i] = '}' then Ok (J_obj (List.rev acc), i + 1)
    else if s.[i] <> '"' then Error "expected object key"
    else
      match parse_string (i + 1) with
      | Error e -> Error e
      | Ok (key, i) -> (
          let i = skip i in
          if i >= n || s.[i] <> ':' then Error "expected ':'"
          else
            match parse_value (i + 1) with
            | Error e -> Error e
            | Ok (v, i) -> (
                let i = skip i in
                if i < n && s.[i] = ',' then parse_obj (i + 1) ((key, v) :: acc)
                else if i < n && s.[i] = '}' then
                  Ok (J_obj (List.rev ((key, v) :: acc)), i + 1)
                else Error "expected ',' or '}'"))
  and parse_arr i acc =
    let i = skip i in
    if i >= n then Error "unterminated array"
    else if s.[i] = ']' then Ok (J_arr (List.rev acc), i + 1)
    else
      match parse_value i with
      | Error e -> Error e
      | Ok (v, i) -> (
          let i = skip i in
          if i < n && s.[i] = ',' then parse_arr (i + 1) (v :: acc)
          else if i < n && s.[i] = ']' then Ok (J_arr (List.rev (v :: acc)), i + 1)
          else Error "expected ',' or ']'")
  in
  match parse_value 0 with
  | Error e -> Error e
  | Ok (v, i) ->
      let i = skip i in
      if i <> n then Error "trailing data after document" else Ok v

let field name fields = List.assoc_opt name fields

let require_string name fields =
  match field name fields with
  | Some (J_str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" name)

let require_number name fields =
  match field name fields with
  | Some (J_num f) -> Ok f
  | _ -> Error (Printf.sprintf "missing or non-number field %S" name)

let check_attrs name fields =
  match field name fields with
  | Some (J_obj kvs) ->
      if List.for_all (fun (_, v) -> match v with J_str _ -> true | _ -> false) kvs
      then Ok ()
      else Error (Printf.sprintf "%S values must be strings" name)
  | _ -> Error (Printf.sprintf "missing or non-object field %S" name)

let check_event (j : json) : (unit, string) result =
  match j with
  | J_obj fields -> (
      match require_string "name" fields with
      | Error e -> Error e
      | Ok _ -> (
          match require_number "at_ms" fields with
          | Error e -> Error e
          | Ok _ -> check_attrs "attrs" fields))
  | _ -> Error "event is not an object"

let rec check_list check = function
  | [] -> Ok ()
  | x :: rest -> ( match check x with Error e -> Error e | Ok () -> check_list check rest)

let rec check_span (j : json) : (unit, string) result =
  match j with
  | J_obj fields -> (
      match require_string "name" fields with
      | Error e -> Error e
      | Ok _ -> (
          match require_number "start_ms" fields with
          | Error e -> Error e
          | Ok _ -> (
              match require_number "end_ms" fields with
              | Error e -> Error e
              | Ok _ -> (
                  match check_attrs "attrs" fields with
                  | Error e -> Error e
                  | Ok () -> (
                      match field "ops" fields with
                      | Some (J_obj ops)
                        when List.for_all
                               (fun (_, v) ->
                                 match v with
                                 | J_num f -> Float.is_integer f && f >= 0.0
                                 | _ -> false)
                               ops -> (
                          match field "events" fields with
                          | Some (J_arr evs) -> (
                              match check_list check_event evs with
                              | Error e -> Error e
                              | Ok () -> (
                                  match field "children" fields with
                                  | Some (J_arr children) ->
                                      check_list check_span children
                                  | _ -> Error "missing or non-array \"children\""))
                          | _ -> Error "missing or non-array \"events\""
                          )
                      | _ -> Error "missing or malformed \"ops\" (object of non-negative integers)")))))
  | _ -> Error "span is not an object"

let validate_json (s : string) : (unit, string) result =
  match parse_json s with
  | Error e -> Error ("parse error: " ^ e)
  | Ok (J_obj fields) -> (
      match require_string "schema" fields with
      | Error e -> Error e
      | Ok v when v <> json_schema_version ->
          Error (Printf.sprintf "schema is %S, expected %S" v json_schema_version)
      | Ok _ -> (
          match require_string "clock_unit" fields with
          | Error e -> Error e
          | Ok _ -> (
              match field "spans" fields with
              | Some (J_arr spans) -> (
                  match check_list check_span spans with
                  | Error e -> Error e
                  | Ok () -> (
                      match field "events" fields with
                      | Some (J_arr evs) -> check_list check_event evs
                      | _ -> Error "missing or non-array \"events\""))
              | _ -> Error "missing or non-array \"spans\"")))
  | Ok _ -> Error "document is not an object"

(* --- ASCII span-tree rendering ------------------------------------ *)

let ops_summary ?(limit = 6) (ops : (string * int) list) : string =
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) ops in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let shown = take limit sorted in
  let extra = List.length sorted - List.length shown in
  let body =
    String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shown)
  in
  if extra > 0 then Printf.sprintf "%s (+%d more)" body extra else body

let render (sp : span) : string =
  let b = Buffer.create 1024 in
  let rec go prefix is_last sp =
    let connector =
      if prefix = "" && is_last then "" else if is_last then "`- " else "|- "
    in
    let attrs =
      match sp.sp_attrs with
      | [] -> ""
      | attrs ->
          " ["
          ^ String.concat " "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
          ^ "]"
    in
    let sim =
      match (sp.sp_sim_start_ms, sp.sp_sim_end_ms) with
      | Some s, Some e -> Printf.sprintf "  sim %.2f ms" (e -. s)
      | _ -> ""
    in
    Buffer.add_string b
      (Printf.sprintf "%s%s%s%s  %.3f ms%s\n" prefix connector sp.sp_name attrs
         (duration_ms sp) sim);
    let child_prefix =
      if prefix = "" && connector = "" then ""
      else prefix ^ if is_last then "   " else "|  "
    in
    (match sp.sp_ops with
    | [] -> ()
    | ops ->
        Buffer.add_string b
          (Printf.sprintf "%s   ops: %s\n" child_prefix (ops_summary ops)));
    List.iter
      (fun ev ->
        Buffer.add_string b
          (Printf.sprintf "%s   ! %s%s\n" child_prefix ev.ev_name
             (match ev.ev_attrs with
             | [] -> ""
             | attrs ->
                 " ["
                 ^ String.concat " "
                     (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
                 ^ "]")))
      sp.sp_events;
    let n = List.length sp.sp_children in
    List.iteri (fun i c -> go child_prefix (i = n - 1) c) sp.sp_children
  in
  go "" true sp;
  Buffer.contents b
