(** A Lightning-style bi-directional payment channel with the penalty
    (revocation) mechanism — the baseline MoNet is evaluated against.

    Funding goes to a 2-of-2 multisig. Each state i has a commitment
    transaction whose to-self output is encumbered by a CSV delay and a
    per-state revocation key: updating the channel exchanges fresh
    commitment signatures and then reveals the *previous* state's
    revocation secret, so publishing an old commitment forfeits the
    cheater's balance to the watcher. HTLC outputs support multi-hop.

    Note the structural contrast with MoChannel: every funding and
    commitment here is identifiable on-chain (multisig and CSV scripts
    are visible), which is exactly the fungibility gap MoNet closes. *)

open Monet_ec

type side = { kp : Monet_sig.Sig_core.keypair; g : Monet_hash.Drbg.t }

type htlc = { hl_hash : string; hl_amount : int; hl_to_a : bool; hl_timeout : int }

type state = {
  st_num : int;
  st_bal_a : int;
  st_bal_b : int;
  st_htlcs : htlc list;
  (* Per-state revocation: secret held by its creator until revoked. *)
  st_rev_secret_a : Sc.t;
  st_rev_secret_b : Sc.t;
  st_commit : Btc_sim.tx; (* symmetric simplified commitment *)
  st_sig_a : Monet_sig.Sig_core.signature;
  st_sig_b : Monet_sig.Sig_core.signature;
}

type t = {
  chain : Btc_sim.t;
  a : side;
  b : side;
  funding_outpoint : int;
  capacity : int;
  csv_delay : int;
  mutable current : state;
  mutable revoked : (int * Sc.t * Sc.t) list; (* state, secrets — both directions *)
  mutable closed : bool;
  mutable n_updates : int;
}

let build_commit (t_chain : Btc_sim.t) ~(funding : int) ~(kp_a : Point.t)
    ~(kp_b : Point.t) ~(bal_a : int) ~(bal_b : int) ~(htlcs : htlc list)
    ~(rev_a : Point.t) ~(rev_b : Point.t) ~(csv : int) : Btc_sim.tx =
  ignore t_chain;
  let outputs =
    (if bal_a > 0 then
       [ { Btc_sim.script = Btc_sim.ToSelfDelayed { owner = kp_a; revocation = rev_b; csv };
           amount = bal_a } ]
     else [])
    @ (if bal_b > 0 then
         [ { Btc_sim.script = Btc_sim.ToSelfDelayed { owner = kp_b; revocation = rev_a; csv };
             amount = bal_b } ]
       else [])
    @ List.map
        (fun h ->
          { Btc_sim.script =
              Btc_sim.Htlc
                { hash = h.hl_hash;
                  claimant = (if h.hl_to_a then kp_a else kp_b);
                  refund = (if h.hl_to_a then kp_b else kp_a);
                  timeout = h.hl_timeout };
            amount = h.hl_amount })
        htlcs
  in
  { Btc_sim.inputs = [ { Btc_sim.prev = funding; witness = Btc_sim.WSig { rp = Monet_ec.Point.identity; s = Sc.zero } } ];
    outputs; locktime = 0 }

let rev_secret (side : side) (n : int) : Sc.t =
  Sc.of_hash "ln-rev" [ Sc.to_bytes_le side.kp.Monet_sig.Sig_core.sk; string_of_int n ]

let sign_commit (t : t) (tx : Btc_sim.tx) :
    Monet_sig.Sig_core.signature * Monet_sig.Sig_core.signature =
  let msg = Btc_sim.sighash tx in
  ( Monet_sig.Sig_core.sign t.a.g t.a.kp msg,
    Monet_sig.Sig_core.sign t.b.g t.b.kp msg )

let make_state (t : t) ~(n : int) ~(bal_a : int) ~(bal_b : int) ~(htlcs : htlc list) :
    state =
  let ra = rev_secret t.a n and rb = rev_secret t.b n in
  let commit =
    build_commit t.chain ~funding:t.funding_outpoint ~kp_a:t.a.kp.vk ~kp_b:t.b.kp.vk
      ~bal_a ~bal_b ~htlcs ~rev_a:(Point.mul_base ra) ~rev_b:(Point.mul_base rb)
      ~csv:t.csv_delay
  in
  let sig_a, sig_b = sign_commit t commit in
  (* Each side verifies the counterparty's signature before accepting
     the state — two signature verifications per update, as on LN. *)
  let msg = Btc_sim.sighash commit in
  assert (Monet_sig.Sig_core.verify t.a.kp.vk msg sig_a);
  assert (Monet_sig.Sig_core.verify t.b.kp.vk msg sig_b);
  { st_num = n; st_bal_a = bal_a; st_bal_b = bal_b; st_htlcs = htlcs;
    st_rev_secret_a = ra; st_rev_secret_b = rb; st_commit = commit;
    st_sig_a = sig_a; st_sig_b = sig_b }

(** Open a channel funded by two P2pk outputs (one per party). *)
let open_channel (g : Monet_hash.Drbg.t) (chain : Btc_sim.t) ~(bal_a : int)
    ~(bal_b : int) ~(csv_delay : int) : (t, string) result =
  let a = { kp = Monet_sig.Sig_core.gen g; g = Monet_hash.Drbg.split g "a" } in
  let b = { kp = Monet_sig.Sig_core.gen g; g = Monet_hash.Drbg.split g "b" } in
  let coin_a = Btc_sim.genesis_output chain { script = P2pk a.kp.vk; amount = bal_a } in
  let coin_b = Btc_sim.genesis_output chain { script = P2pk b.kp.vk; amount = bal_b } in
  let funding_tx =
    { Btc_sim.inputs =
        [ { prev = coin_a; witness = WSig { rp = Monet_ec.Point.identity; s = Sc.zero } };
          { prev = coin_b; witness = WSig { rp = Monet_ec.Point.identity; s = Sc.zero } } ];
      outputs = [ { script = Multisig2 (a.kp.vk, b.kp.vk); amount = bal_a + bal_b } ];
      locktime = 0 }
  in
  let msg = Btc_sim.sighash funding_tx in
  let funding_tx =
    { funding_tx with
      Btc_sim.inputs =
        [ { prev = coin_a; witness = WSig (Monet_sig.Sig_core.sign a.g a.kp msg) };
          { prev = coin_b; witness = WSig (Monet_sig.Sig_core.sign b.g b.kp msg) } ] }
  in
  match Btc_sim.submit chain funding_tx with
  | Error e -> Error ("ln funding: " ^ e)
  | Ok () ->
      ignore (Btc_sim.mine chain);
      let funding_outpoint = chain.Btc_sim.n - 1 in
      let t =
        { chain; a; b; funding_outpoint; capacity = bal_a + bal_b; csv_delay;
          current =
            { st_num = 0; st_bal_a = 0; st_bal_b = 0; st_htlcs = [];
              st_rev_secret_a = Sc.zero; st_rev_secret_b = Sc.zero;
              st_commit = { inputs = []; outputs = []; locktime = 0 };
              st_sig_a = { rp = Monet_ec.Point.identity; s = Sc.zero };
              st_sig_b = { rp = Monet_ec.Point.identity; s = Sc.zero } };
          revoked = []; closed = false; n_updates = 0 }
      in
      t.current <- make_state t ~n:0 ~bal_a ~bal_b ~htlcs:[];
      Ok t

(** One channel update: new commitment signed by both, previous state
    revoked by revealing its secrets. *)
let update (t : t) ~(amount_from_a : int) : (unit, string) result =
  if t.closed then Error "channel closed"
  else begin
    let bal_a = t.current.st_bal_a - amount_from_a in
    let bal_b = t.current.st_bal_b + amount_from_a in
    if bal_a < 0 || bal_b < 0 then Error "insufficient balance"
    else begin
      let prev = t.current in
      t.current <-
        make_state t ~n:(prev.st_num + 1) ~bal_a ~bal_b ~htlcs:prev.st_htlcs;
      t.revoked <- (prev.st_num, prev.st_rev_secret_a, prev.st_rev_secret_b) :: t.revoked;
      t.n_updates <- t.n_updates + 1;
      Ok ()
    end
  end

(** Add an HTLC (one hop of an LN multi-hop payment). *)
let add_htlc (t : t) ~(from_a : bool) ~(amount : int) ~(hash : string)
    ~(timeout : int) : (unit, string) result =
  if t.closed then Error "channel closed"
  else begin
    let bal_a = t.current.st_bal_a - (if from_a then amount else 0) in
    let bal_b = t.current.st_bal_b - (if from_a then 0 else amount) in
    if bal_a < 0 || bal_b < 0 then Error "insufficient balance"
    else begin
      let htlc =
        { hl_hash = hash; hl_amount = amount; hl_to_a = not from_a; hl_timeout = timeout }
      in
      let prev = t.current in
      t.current <-
        make_state t ~n:(prev.st_num + 1) ~bal_a ~bal_b ~htlcs:(htlc :: prev.st_htlcs);
      t.revoked <- (prev.st_num, prev.st_rev_secret_a, prev.st_rev_secret_b) :: t.revoked;
      Ok ()
    end
  end

(** Settle an HTLC with its preimage (moves the amount to the
    claimant) — the off-chain fulfilled path. *)
let fulfill_htlc (t : t) ~(preimage : string) : (unit, string) result =
  let hash = Monet_hash.Hash.fast preimage in
  match
    List.partition
      (fun h -> Monet_util.Bytes_ext.ct_equal h.hl_hash hash)
      t.current.st_htlcs
  with
  | [], _ -> Error "no such htlc"
  | h :: _, rest ->
      let prev = t.current in
      let bal_a = prev.st_bal_a + (if h.hl_to_a then h.hl_amount else 0) in
      let bal_b = prev.st_bal_b + (if h.hl_to_a then 0 else h.hl_amount) in
      t.current <- make_state t ~n:(prev.st_num + 1) ~bal_a ~bal_b ~htlcs:rest;
      t.revoked <- (prev.st_num, prev.st_rev_secret_a, prev.st_rev_secret_b) :: t.revoked;
      Ok ()

(** Unilateral close: publish the current commitment. *)
let force_close (t : t) : (unit, string) result =
  if t.closed then Error "channel closed"
  else begin
    let tx = t.current.st_commit in
    let signed =
      { tx with
        Btc_sim.inputs =
          [ { prev = t.funding_outpoint;
              witness = WMulti (t.current.st_sig_a, t.current.st_sig_b) } ] }
    in
    match Btc_sim.submit t.chain signed with
    | Error e -> Error e
    | Ok () ->
        ignore (Btc_sim.mine t.chain);
        t.closed <- true;
        Ok ()
  end

(** Publish an *old* (revoked) commitment — the cheat. *)
let publish_revoked (t : t) ~(state_num : int)
    ~(old_states : (int * state) list) : (unit, string) result =
  match List.assoc_opt state_num old_states with
  | None -> Error "no such old state"
  | Some st -> (
      let signed =
        { st.st_commit with
          Btc_sim.inputs =
            [ { prev = t.funding_outpoint; witness = WMulti (st.st_sig_a, st.st_sig_b) } ] }
      in
      match Btc_sim.submit t.chain signed with
      | Error e -> Error e
      | Ok () ->
          ignore (Btc_sim.mine t.chain);
          t.closed <- true;
          Ok ())

(** Penalty: sweep a revoked commitment's delayed output with the
    revocation key before the CSV delay elapses. *)
let punish (t : t) ~(victim_is_a : bool) ~(state_num : int) : (int, string) result =
  match List.find_opt (fun (n, _, _) -> n = state_num) t.revoked with
  | None -> Error "state not revoked"
  | Some (_, rev_a, rev_b) ->
      (* The cheater's to-self output is revocable with the secret the
         victim holds. Find it on-chain. *)
      let rev_key = if victim_is_a then rev_secret t.a state_num else rev_secret t.b state_num in
      ignore rev_a;
      ignore rev_b;
      let victim = if victim_is_a then t.a else t.b in
      let found = ref None in
      for i = 0 to t.chain.Btc_sim.n - 1 do
        let e = t.chain.Btc_sim.entries.(i) in
        match e.Btc_sim.out.Btc_sim.script with
        | Btc_sim.ToSelfDelayed d
          when (not e.Btc_sim.spent)
               && Point.equal d.revocation (Point.mul_base rev_key) ->
            found := Some (i, e.Btc_sim.out.Btc_sim.amount)
        | _ -> ()
      done;
      (match !found with
      | None -> Error "no revocable output on chain"
      | Some (outpoint, amount) ->
          let sweep =
            { Btc_sim.inputs =
                [ { prev = outpoint; witness = WRevocation { rp = Monet_ec.Point.identity; s = Sc.zero } } ];
              outputs = [ { script = P2pk victim.kp.vk; amount } ];
              locktime = 0 }
          in
          let msg = Btc_sim.sighash sweep in
          let sweep =
            { sweep with
              Btc_sim.inputs =
                [ { prev = outpoint;
                    witness =
                      WRevocation
                        (Monet_sig.Sig_core.sign victim.g
                           { sk = rev_key; vk = Point.mul_base rev_key }
                           msg) } ] }
          in
          (match Btc_sim.submit t.chain sweep with
          | Error e -> Error e
          | Ok () ->
              ignore (Btc_sim.mine t.chain);
              Ok amount))
