(** Generic Consecutive Adaptor Signature (paper Algorithm 1).

    CAS composes any adaptor-signature scheme with a VCOF: the signer
    pre-signs message mⁱ under the chain's i-th statement Yⁱ; revealing
    any intermediate witness yⁱ makes σⁱ — and, via forward derivation,
    every later signature — adaptable. This module is the single-signer
    instantiation over the Schnorr adaptor scheme ({!Monet_sig.Adaptor});
    the two-party ring version lives in {!Clras}.

    The procedures mirror Algorithm 1: Gen, PSign, PVrfy, Vrfy, Adapt,
    Ext, SWGen, NewSW, CVrfy. *)

open Monet_ec
open Monet_sig

type signer = {
  keypair : Sig_core.keypair;
  pp : Sc.t;
  mutable index : int;
  mutable current : Monet_vcof.Vcof.pair;
}

let gen (g : Monet_hash.Drbg.t) ?(pp = Monet_vcof.Vcof.default_pp) () : signer =
  { keypair = Sig_core.gen g; pp; index = 0; current = Monet_vcof.Vcof.sw_gen g }

let statement (s : signer) : Point.t = s.current.Monet_vcof.Vcof.stmt
let witness (s : signer) : Sc.t = s.current.Monet_vcof.Vcof.wit

(** NewSW: advance the chain and return (new statement, step proof) —
    the public part a verifier needs for CVrfy. *)
let new_sw ?reps (g : Monet_hash.Drbg.t) (s : signer) : Point.t * Monet_vcof.Vcof.proof
    =
  let next, proof = Monet_vcof.Vcof.new_sw ?reps g s.current ~pp:s.pp in
  s.current <- next;
  s.index <- s.index + 1;
  (next.Monet_vcof.Vcof.stmt, proof)

let c_vrfy (s : signer) ~(prev : Point.t) ~(next : Point.t)
    (proof : Monet_vcof.Vcof.proof) : bool =
  Monet_vcof.Vcof.c_vrfy ~pp:s.pp ~prev ~next proof

(** Batched CVrfy across a burst of chain steps under this signer's pp
    (e.g. verifying a counterparty's whole chain at channel open):
    one multi-scalar multiplication instead of per-step proofs. *)
let c_vrfy_batch (s : signer)
    (steps : (Point.t * Point.t * Monet_vcof.Vcof.proof) array) : bool =
  Monet_vcof.Vcof.c_vrfy_batch ~pp:s.pp steps

(** PSign under the signer's current chain statement. *)
let p_sign (g : Monet_hash.Drbg.t) (s : signer) (msg : string) : Adaptor.pre_signature
    =
  Adaptor.pre_sign g s.keypair msg ~stmt:(statement s)

let p_vrfy ~(vk : Point.t) ~(stmt : Point.t) (msg : string)
    (pre : Adaptor.pre_signature) : bool =
  Adaptor.pre_verify vk msg ~stmt pre

let vrfy ~(vk : Point.t) (msg : string) (sg : Sig_core.signature) : bool =
  Sig_core.verify vk msg sg

let adapt = Adaptor.adapt
let ext = Adaptor.ext

(** Forward-derive the witness for state [target] from a revealed
    witness at state [from]: the consecutiveness that makes revealing
    one witness expose all subsequent signatures. *)
let derive_forward (s : signer) ~(from_wit : Sc.t) ~(steps : int) : Sc.t =
  Monet_vcof.Vcof.derive_n ~pp:s.pp from_wit steps
