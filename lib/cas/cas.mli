(** Generic Consecutive Adaptor Signature (paper Algorithm 1):
    adaptor signatures whose statements walk a VCOF chain, so
    revealing any intermediate witness exposes that signature and —
    via forward derivation — every later one. Single-signer Schnorr
    instantiation; the two-party ring version is {!Clras}. *)

open Monet_ec
open Monet_sig

type signer = {
  keypair : Sig_core.keypair;
  pp : Sc.t;
  mutable index : int;
  mutable current : Monet_vcof.Vcof.pair;
}

val gen : Monet_hash.Drbg.t -> ?pp:Sc.t -> unit -> signer
val statement : signer -> Point.t
val witness : signer -> Sc.t

val new_sw :
  ?reps:int -> Monet_hash.Drbg.t -> signer -> Point.t * Monet_vcof.Vcof.proof
(** Advance the chain; returns the new statement and step proof. *)

val c_vrfy :
  signer -> prev:Point.t -> next:Point.t -> Monet_vcof.Vcof.proof -> bool

val c_vrfy_batch :
  signer -> (Point.t * Point.t * Monet_vcof.Vcof.proof) array -> bool
(** Batched CVrfy over a burst of (prev, next, proof) chain steps:
    one multi-scalar multiplication for the whole burst. *)

val p_sign : Monet_hash.Drbg.t -> signer -> string -> Adaptor.pre_signature
(** Pre-sign under the signer's current chain statement. *)

val p_vrfy :
  vk:Point.t -> stmt:Point.t -> string -> Adaptor.pre_signature -> bool

val vrfy : vk:Point.t -> string -> Sig_core.signature -> bool
val adapt : Adaptor.pre_signature -> y:Sc.t -> Sig_core.signature
val ext : Sig_core.signature -> Adaptor.pre_signature -> Sc.t

val derive_forward : signer -> from_wit:Sc.t -> steps:int -> Sc.t
(** Roll a revealed witness forward [steps] chain steps. *)
