(** Exhaustive bounded breadth-first exploration of the abstract
    channel model, with canonical-key dedup and minimal-length
    counterexample traces. *)

(** One property violation: catalog id, checker message, BFS depth and
    the action trace from the initial state to the violating one. BFS
    order makes the trace minimal-length. *)
type violation = {
  v_inv : string;
  v_msg : string;
  v_depth : int;
  v_trace : Model.action list;
}

(** Exploration counters: distinct states after dedup, expanded
    states, traversed edges (duplicates included), deepest layer
    reached, terminal / quiescent / violating state counts, and
    whether the frontier was exhausted within the bounds. *)
type stats = {
  st_states : int;
  st_expansions : int;
  st_transitions : int;
  st_depth_reached : int;
  st_terminal : int;
  st_quiescent : int;
  st_violating : int;
  st_complete : bool;
}

(** The outcome of one exploration: the depth bound, the counters and
    a capped sample of violations, shallowest first. *)
type result = {
  r_depth : int;
  r_stats : stats;
  r_violations : violation list;
}

(** [run ~depth cfg] explores [cfg]'s state space to [depth] actions.
    [max_states] bounds memory (hitting it clears [st_complete]);
    [max_violations] caps the counterexample sample (every violating
    state is still counted); [stop_on_violation] ends the search at
    the first counterexample — still minimal, since BFS reaches the
    shallowest violating layer first. *)
val run :
  ?max_states:int ->
  ?max_violations:int ->
  ?stop_on_violation:bool ->
  depth:int ->
  Model.config ->
  result
