(** monet-mc/1: the model checker's machine-readable result format,
    with the same self-validation discipline as monet-lint/2 and
    monet-trace/1 — the writer emits the document and an independent
    structural validator re-parses it before anything downstream
    consumes it. *)

(** The schema identifier, ["monet-mc/1"]. *)
val json_schema_version : string

(** Render one exploration result (and the configuration it ran
    under) as a monet-mc/1 JSON document. *)
val to_json : Model.config -> Explore.result -> string

(** Validate a document against the monet-mc/1 shape using an
    independent exception-free parser; [Error] describes the first
    structural problem found. *)
val validate_json : string -> (unit, string) result

(** Multi-line human summary of an exploration, for the non-JSON CLI
    path: completeness, counts, configuration and the shortest
    counterexamples. *)
val summary : Model.config -> Explore.result -> string
