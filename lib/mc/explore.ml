(* Exhaustive bounded exploration of the abstract channel model.

   Breadth-first over [Model.enabled]/[Model.apply] with the canonical
   serialization ([Model.key]) as the dedup key, so each distinct
   abstract state is expanded exactly once. BFS order makes the first
   counterexample to any property a {e minimal-length} one — the
   shortest fault schedule that breaks the invariant, which is what a
   human wants to read and what [Replay] drives through the concrete
   stack. *)

type violation = {
  v_inv : string;  (* catalog id, INV-1 … INV-8 *)
  v_msg : string;
  v_depth : int;
  v_trace : Model.action list;  (* init → violating state, in order *)
}

type stats = {
  st_states : int;  (* distinct states discovered (after dedup) *)
  st_expansions : int;  (* states whose successors were generated *)
  st_transitions : int;  (* edges traversed, duplicates included *)
  st_depth_reached : int;  (* deepest layer a discovered state sits in *)
  st_terminal : int;  (* discovered states with no enabled action *)
  st_quiescent : int;  (* discovered states passing [Model.quiescent] *)
  st_violating : int;  (* discovered states violating some property *)
  st_complete : bool;  (* frontier exhausted within the bounds *)
}

type result = {
  r_depth : int;  (* the depth bound explored to *)
  r_stats : stats;
  r_violations : violation list;  (* capped sample, shallowest first *)
}

(* Reconstruct the action trace of node [id] from the parent links. *)
let trace_of (parents : (int, int * Model.action) Hashtbl.t) (id : int) :
    Model.action list =
  let rec go id acc =
    match Hashtbl.find_opt parents id with
    | None -> acc
    | Some (pid, a) -> go pid (a :: acc)
  in
  go id []

(* Explore [cfg]'s state space to [depth] actions. [max_states] bounds
   memory (hitting it clears [st_complete]); [max_violations] caps the
   counterexample sample (every violating state is still counted).
   [stop_on_violation] ends the search as soon as one counterexample
   exists — the trace is still minimal, since BFS finds it in the
   shallowest layer that has one. *)
let run ?(max_states = 2_000_000) ?(max_violations = 8)
    ?(stop_on_violation = false) ~(depth : int) (cfg : Model.config) : result =
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let parents : (int, int * Model.action) Hashtbl.t = Hashtbl.create 4096 in
  let queue : (Model.state * int * int) Queue.t = Queue.create () in
  let next_id = ref 0 in
  let expansions = ref 0 in
  let transitions = ref 0 in
  let depth_reached = ref 0 in
  let terminal = ref 0 in
  let quiescent = ref 0 in
  let violating = ref 0 in
  let violations = ref [] in
  let capped = ref false in
  let stop = ref false in
  (* Discover a state: dedup, check every property, enqueue. *)
  let discover (st : Model.state) (d : int)
      (parent : (int * Model.action) option) : unit =
    let k = Model.key st in
    match Hashtbl.find_opt visited k with
    | Some _ -> ()
    | None ->
        if Hashtbl.length visited >= max_states then capped := true
        else begin
          let id = !next_id in
          incr next_id;
          Hashtbl.add visited k id;
          (match parent with
          | Some (pid, a) -> Hashtbl.add parents id (pid, a)
          | None -> ());
          if d > !depth_reached then depth_reached := d;
          if Model.quiescent st then incr quiescent;
          (match Model.check cfg st with
          | [] -> ()
          | vs ->
              incr violating;
              if !violations = [] || not stop_on_violation then
                List.iter
                  (fun (inv, msg) ->
                    if List.length !violations < max_violations then
                      violations :=
                        { v_inv = inv; v_msg = msg; v_depth = d;
                          v_trace = trace_of parents id }
                        :: !violations)
                  vs;
              if stop_on_violation then stop := true);
          Queue.add (st, d, id) queue
        end
  in
  discover (Model.init cfg) 0 None;
  while (not (Queue.is_empty queue)) && not !stop do
    let st, d, id = Queue.pop queue in
    if d < depth then begin
      incr expansions;
      let acts = Model.enabled cfg st in
      if acts = [] then incr terminal;
      List.iter
        (fun a ->
          if not !stop then begin
            incr transitions;
            discover (Model.apply cfg st a) (d + 1) (Some (id, a))
          end)
        acts
    end
    else begin
      (* bound reached: count terminality but do not expand *)
      if Model.enabled cfg st = [] then incr terminal
    end
  done;
  { r_depth = depth;
    r_stats =
      { st_states = Hashtbl.length visited; st_expansions = !expansions;
        st_transitions = !transitions; st_depth_reached = !depth_reached;
        st_terminal = !terminal; st_quiescent = !quiescent;
        st_violating = !violating;
        st_complete = (not !capped) && not !stop };
    r_violations = List.rev !violations }
