(** The abstracted two-party channel protocol as a finite transition
    system, for exhaustive bounded exploration.

    An abstract state carries exactly the fields the safety properties
    quantify over — committed state number, balance pair, pending
    lock, closed flag, journal precommit bit, per-direction wire
    queues and dedup sets — and drops everything the concrete
    [Party] derives deterministically from the message sequence.
    DESIGN.md §3.13 gives the abstraction map and the soundness
    argument; [Replay] demonstrates the correspondence by driving the
    real stack along an abstract action trace. *)

(** The two channel endpoints. A is always the payer of the scripted
    payment. *)
type side = A | B

(** The opposite endpoint. *)
val other : side -> side

(** ["A"] or ["B"], for traces and messages. *)
val side_label : side -> string

(** Message kinds of one (non-batched) refresh session — Stmt → Nonce
    → Z → Kes each way — plus the single lock-opening message of an
    unlock. *)
type mkind = M_stmt | M_nonce | M_z | M_kes | M_lock_open

(** Stable small-integer code for [mkind], used in dedup keys and the
    canonical serialization. *)
val mkind_code : mkind -> int

(** Human label for a message kind. *)
val mkind_label : mkind -> string

(** A message on the wire: kind plus the session id it belongs to.
    Fresh per-session randomness makes concrete messages of distinct
    sessions distinct, so (kind, sid, direction) identifies one. *)
type msg = { mk : mkind; m_sid : int }

(** Where a party is inside the current refresh session. [Ph_kes] with
    the precommit bit set is the resumable point: the journal already
    holds the session outcome, so a crash-restart re-enters there. *)
type phase = Ph_idle | Ph_stmt | Ph_nonce | Ph_z | Ph_kes

(** Liveness of a party process: up, crash-stopped forever, or crashed
    with an intact journal awaiting [A_restart]. *)
type down = Up | Down_stop | Down_restart

(** A pending payment lock: amount and which side pays. *)
type lockv = { lv_amount : int; lv_payer : side }

(** One party's abstract state: committed channel fields plus the
    volatile session progress, crash budget, journal precommit bit,
    delivered-message dedup set and hold-back stash. *)
type pstate = {
  ps_state : int;
  ps_my : int;
  ps_their : int;
  ps_lock : lockv option;
  ps_closed : bool;
  ps_phase : phase;
  ps_down : down;
  ps_crashes : int;
  ps_precommit : bool;
  ps_seen : (int * int) list;
  ps_stash : msg list;
}

(** Committed fields captured at session start — the abstract
    [Party.checkpoint], restored by the symmetric timeout rollback. *)
type ck = { ck_state : int; ck_my : int; ck_their : int;
            ck_lock : lockv option }

(** What a refresh session does: balance update, lock of a payment,
    cooperative cancel of a pending lock, or the unlock release. *)
type skind = S_update of int | S_lock of int | S_cancel | S_unlock

(** Human label for a session kind, e.g. ["lock(2)"]. *)
val skind_label : skind -> string

(** The in-flight session: id, kind, remaining retransmission budget
    and both parties' start-of-session checkpoints. *)
type session = {
  s_sid : int;
  s_kind : skind;
  s_retx : int;
  s_ck_a : ck;
  s_ck_b : ck;
}

(** One scripted protocol step: a plain balance update or a locked
    payment (lock stage then unlock stage), always A paying B. *)
type op = Op_update of int | Op_pay of int

(** Human label for a scripted operation. *)
val op_label : op -> string

(** Terminal fate of the scripted payment, mirroring the chaos plan's
    outcome alphabet. *)
type outcome =
  | O_pending | O_delivered | O_failed | O_cancelled | O_disputed
  | O_punished

(** Human label for a payment outcome. *)
val outcome_label : outcome -> string

(** How a settlement reached the chain; INV-7 reconciles the tower's
    punishment counter against the [Set_punish] entries. *)
type origin = Set_dispute | Set_punish | Set_close

(** The global abstract state: both parties, the two wire queues and
    go-back-N resend logs, the in-flight session, the remaining
    script, the expected-balance ledger of record, the recorded
    settlements and the cheat/punish bookkeeping. *)
type state = {
  g_a : pstate;
  g_b : pstate;
  g_ab : msg list;
  g_ba : msg list;
  g_log_ab : msg list;
  g_log_ba : msg list;
  g_cur : session option;
  g_sid : int;
  g_ops : op list;
  g_stage : int;
  g_exp_a : int;
  g_exp_b : int;
  g_outcome : outcome;
  g_settled : (int * int * origin) list;
  g_funding_spent : bool;
  g_mempool : side option;
  g_cheats : int;
  g_punished : int;
}

(** Seeded bugs: each mutation disables one load-bearing line of the
    transition system, so the checker's teeth can be tested. The first
    two are harness-level (driver rollback, settlement bookkeeping)
    and reproduce concretely under [Replay]; the last two live inside
    the abstract party transition and demonstrate the checker catches
    state-machine bugs the concrete code does not have. *)
type mutation =
  | M_none
  | M_rollback_one_sided
  | M_double_settle
  | M_lock_no_debit
  | M_skip_cancel_release

(** CLI name of a mutation, e.g. ["rollback-one-sided"]. *)
val mutation_label : mutation -> string

(** Every mutation, [M_none] first. *)
val mutations : mutation list

(** Inverse of [mutation_label]. *)
val mutation_of_string : string -> mutation option

(** Which fault actions the exploration may take — the chaos plan's
    fault alphabet plus the adversarial stale-broadcast. *)
type alphabet = {
  al_drop : bool;
  al_dup : bool;
  al_crash : bool;
  al_stop : bool;
  al_cheat : bool;
}

(** The empty alphabet: protocol actions only, no faults. *)
val no_faults : alphabet

(** Comma-joined names of the enabled faults, e.g. ["drop,crash"]. *)
val alphabet_label : alphabet -> string

(** Parse a [--faults drop,dup,crash] style list; ["none"] is the
    empty alphabet. *)
val alphabet_of_string : string -> (alphabet, string) result

(** An exploration instance: initial balances, the payment script, the
    fault alphabet, the per-party crash bound, the per-session
    retransmission budget and the seeded mutation. *)
type config = {
  c_bal_a : int;
  c_bal_b : int;
  c_ops : op list;
  c_alpha : alphabet;
  c_max_crashes : int;
  c_retx : int;
  c_mutation : mutation;
}

(** 6/4 balances, one locked payment of 2, drop+dup+crash faults, one
    crash per party, one retransmission, no mutation — the acceptance
    configuration. *)
val default_config : config

(** Channel capacity, [c_bal_a + c_bal_b]. *)
val capacity : config -> int

(** A configuration and depth bound sufficient to reach the seeded
    bug's minimal counterexample — the single source of truth the CLI
    ([mc trace --bug]), the tests and the smoke gate probe with. *)
val mutation_probe : mutation -> config * int

(** The initial abstract state for [config]. *)
val init : config -> state

(** The atomic interleaving steps the exploration branches over:
    protocol progress (begin/deliver/close), the fault alphabet
    (drop/dup/crash/restart/retransmit/timeout) and the escalations
    (cancel/dispute/cheat/punish). *)
type action =
  | A_begin
  | A_deliver of side
  | A_drop of side
  | A_dup of side
  | A_crash of side * bool
  | A_restart of side
  | A_retransmit
  | A_timeout
  | A_cancel
  | A_dispute of side
  | A_cheat of side
  | A_punish of side
  | A_close

(** Human label for an action, e.g. ["deliver->B"]. *)
val action_label : action -> string

(** Whether the payee already holds the lock witness — from the lock
    stage's completion on, it can redeem the lock in a dispute. *)
val payee_has_witness : state -> bool

(** The next scripted session kind, if the script has one left. *)
val next_kind : state -> skind option

(** No session in flight, wires and stashes empty, both parties up —
    the states where the cross-party properties must hold. *)
val quiescent : state -> bool

(** Map a shared-checker message to its DESIGN.md §3.13 catalog id
    (["INV-1"] … ["INV-8"]). *)
val inv_id : string -> string

(** Check every applicable safety property at a state, returning
    [(catalog id, message)] violations: the every-state properties
    unconditionally, the cross-party ones only at quiescence. *)
val check : config -> state -> (string * string) list

(** The actions enabled at a state, in a deterministic order. *)
val enabled : config -> state -> action list

(** Apply an enabled action. The transition function is deterministic:
    all branching lives in the choice of action. *)
val apply : config -> state -> action -> state

(** Canonical serialization of every distinguishing field, used
    directly as the dedup key: two states collide iff equal, keeping
    the exploration sound. *)
val key : state -> string
