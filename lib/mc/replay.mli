(** Replay an abstract counterexample trace through the concrete
    [Party]/[Recovery]/[Close]/[Revoke] stack — real ring signatures,
    real journals, real ledger — and re-check the shared invariants on
    the concrete end state.

    This closes the abstraction gap from both sides: a violation
    seeded at the harness level (rollback, settlement bookkeeping)
    reproduces concretely, and a violation seeded inside the abstract
    party transition does not — demonstrating the concrete code lacks
    that bug. Every step runs inside an [mc.<action>] obs span, so a
    replayed counterexample renders as a span tree. *)

(** The result of replaying a trace: the abstract end state (the
    oracle the concrete run is compared against), the shared-invariant
    violations found on the concrete and abstract end states, and any
    concrete steps that failed outright. *)
type outcome = {
  ro_final : Model.state;
  ro_violations : (string * string) list;
  ro_abstract : (string * string) list;
  ro_errors : string list;
}

(** [run cfg trace] builds a fresh concrete channel for [cfg] (funded
    wallets, real establishment, journaled endpoints on in-memory
    backends, one watchtower) and executes [trace] action by action,
    keeping an abstract twin in lockstep. [seed] derives all
    randomness, so a replay is deterministic. *)
val run : ?seed:int -> Model.config -> Model.action list -> outcome
