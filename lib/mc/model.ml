(* The abstracted two-party channel protocol, as a finite transition
   system for exhaustive exploration.

   One abstract state mirrors exactly the fields the safety properties
   quantify over — committed state number, balance pair, pending lock,
   closed flag, journal tail, per-direction wire queues and dedup
   sets — and drops everything the concrete [Party] computes
   deterministically from the protocol sequence (nonces, ring
   signatures, CLRAS chain positions, KES halves, transaction bodies).
   DESIGN.md §3.13 gives the abstraction map and argues why dropping
   those fields is sound; the short version is that the concrete
   crypto is a deterministic function of (seed, message sequence), so
   two runs with the same abstract action trace build the same
   transcript, and [Replay] demonstrates the correspondence by
   driving the real [Party]/[Recovery] stack along an abstract trace.

   The message grammar follows the paper's original (non-batched)
   refresh session: Stmt → Nonce → Z → Kes each way, with the
   [Kes_sig] reply preceded by the journal precommit (the point of no
   return), plus the single [Lock_open] message of an unlock. Faults
   are the chaos plan's alphabet (drop / duplicate / crash-stop /
   crash-restart / timeout) and the escalations are the KES dispute
   and the watchtower punishment. *)

type side = A | B

let other = function A -> B | B -> A
let side_label = function A -> "A" | B -> "B"

(* Message kinds of one refresh session plus the unlock opening.
   Dedup in the concrete driver is keyed on the serialized message
   bytes; abstractly, (kind, session id, direction) identifies a
   concrete message uniquely because fresh per-session randomness
   makes any two sessions' messages distinct. *)
type mkind = M_stmt | M_nonce | M_z | M_kes | M_lock_open

let mkind_code = function
  | M_stmt -> 0 | M_nonce -> 1 | M_z -> 2 | M_kes -> 3 | M_lock_open -> 4

let mkind_label = function
  | M_stmt -> "stmt" | M_nonce -> "nonce" | M_z -> "z" | M_kes -> "kes"
  | M_lock_open -> "lock-open"

type msg = { mk : mkind; m_sid : int }

(* Where a party is inside the current refresh session. [Ph_kes] with
   the precommit bit set is the resumable point: the journal already
   holds the session outcome, so a crash-restart re-enters here
   (PR 8's [Recovery] semantics: a precommit tail resumes, an
   intent-only tail aborts). *)
type phase = Ph_idle | Ph_stmt | Ph_nonce | Ph_z | Ph_kes

let phase_code = function
  | Ph_idle -> 0 | Ph_stmt -> 1 | Ph_nonce -> 2 | Ph_z -> 3 | Ph_kes -> 4

type down = Up | Down_stop | Down_restart

let down_code = function Up -> 0 | Down_stop -> 1 | Down_restart -> 2

type lockv = { lv_amount : int; lv_payer : side }

type pstate = {
  ps_state : int;  (* committed state number (bumps at completion) *)
  ps_my : int;  (* committed own balance *)
  ps_their : int;  (* committed counterparty balance, own view *)
  ps_lock : lockv option;  (* committed pending lock *)
  ps_closed : bool;
  ps_phase : phase;  (* volatile session progress *)
  ps_down : down;
  ps_crashes : int;  (* crashes so far; bounded by the config *)
  ps_precommit : bool;  (* journal tail is this session's precommit *)
  ps_seen : (int * int) list;  (* delivered (kind, sid), sorted *)
  ps_stash : msg list;  (* held-back early messages, volatile *)
}

(* Committed fields captured at session start — the abstract
   [Party.checkpoint], restored by the symmetric rollback when the
   session's deadline fires. *)
type ck = { ck_state : int; ck_my : int; ck_their : int;
            ck_lock : lockv option }

(* The protocol operation a session performs. The lock payer is
   always A in the scripted model (A pays B). *)
type skind = S_update of int | S_lock of int | S_cancel | S_unlock

let skind_code = function
  | S_update _ -> 0 | S_lock _ -> 1 | S_cancel -> 2 | S_unlock -> 3

let skind_label = function
  | S_update n -> Printf.sprintf "update(%d)" n
  | S_lock n -> Printf.sprintf "lock(%d)" n
  | S_cancel -> "cancel"
  | S_unlock -> "unlock"

type session = {
  s_sid : int;
  s_kind : skind;
  s_retx : int;  (* retransmission budget left *)
  s_ck_a : ck;
  s_ck_b : ck;
}

type op = Op_update of int | Op_pay of int

let op_label = function
  | Op_update n -> Printf.sprintf "update(%d)" n
  | Op_pay n -> Printf.sprintf "pay(%d)" n

type outcome =
  | O_pending | O_delivered | O_failed | O_cancelled | O_disputed
  | O_punished

let outcome_code = function
  | O_pending -> 0 | O_delivered -> 1 | O_failed -> 2 | O_cancelled -> 3
  | O_disputed -> 4 | O_punished -> 5

let outcome_label = function
  | O_pending -> "pending" | O_delivered -> "delivered" | O_failed -> "failed"
  | O_cancelled -> "cancelled" | O_disputed -> "disputed"
  | O_punished -> "punished"

(* How a settlement reached the chain — INV-7 reconciles the tower's
   punishment counter against the [Set_punish] entries. *)
type origin = Set_dispute | Set_punish | Set_close

let origin_code = function Set_dispute -> 0 | Set_punish -> 1 | Set_close -> 2

type state = {
  g_a : pstate;
  g_b : pstate;
  g_ab : msg list;  (* wire A→B, head delivered next *)
  g_ba : msg list;  (* wire B→A *)
  g_log_ab : msg list;  (* session send log A→B, oldest first *)
  g_log_ba : msg list;
  g_cur : session option;
  g_sid : int;  (* last session id issued *)
  g_ops : op list;  (* remaining script *)
  g_stage : int;  (* inside Op_pay: 0 = lock next, 1 = unlock next *)
  g_exp_a : int;  (* expected A balance (the script's ledger of record) *)
  g_exp_b : int;
  g_outcome : outcome;
  g_settled : (int * int * origin) list;  (* (pay_a, pay_b, how), newest first *)
  g_funding_spent : bool;
  g_mempool : side option;  (* a stale commitment posted by this cheater *)
  g_cheats : int;
  g_punished : int;  (* tower punishment counter *)
}

(* --- seeded bugs ---------------------------------------------------
   Each mutation disables one load-bearing line of the transition
   system, so the checker's teeth can be tested: the seeded bug must
   produce a counterexample, and an unmutated run must not. The first
   two are harness-level (driver rollback / settlement bookkeeping),
   so [Replay] reproduces them on the concrete stack; the last two
   live inside the party transition and exist to demonstrate that the
   checker catches state-machine bugs the concrete code does not
   have. *)
type mutation =
  | M_none
  | M_rollback_one_sided
      (* timeout rolls back only party A — the symmetric rollback in
         [Driver.with_rollback] is what INV-3 rests on *)
  | M_double_settle
      (* the dispute path records its settlement twice — the
         settle-once bookkeeping behind INV-5 *)
  | M_lock_no_debit
      (* lock completion credits the payee without debiting the
         payer — conservation inside [complete_refresh] *)
  | M_skip_cancel_release
      (* cancel completion forgets to release B's lock — the
         release line of the cancel path *)

let mutation_label = function
  | M_none -> "none"
  | M_rollback_one_sided -> "rollback-one-sided"
  | M_double_settle -> "double-settle"
  | M_lock_no_debit -> "lock-no-debit"
  | M_skip_cancel_release -> "skip-cancel-release"

let mutations =
  [ M_none; M_rollback_one_sided; M_double_settle; M_lock_no_debit;
    M_skip_cancel_release ]

let mutation_of_string (s : string) : mutation option =
  List.find_opt (fun m -> mutation_label m = s) mutations

(* --- configuration ------------------------------------------------- *)

type alphabet = {
  al_drop : bool;
  al_dup : bool;
  al_crash : bool;  (* crash-restart *)
  al_stop : bool;  (* crash-stop *)
  al_cheat : bool;  (* stale broadcast + watchtower punishment *)
}

let no_faults =
  { al_drop = false; al_dup = false; al_crash = false; al_stop = false;
    al_cheat = false }

let alphabet_label (a : alphabet) : string =
  String.concat ","
    (List.filter_map
       (fun (on, l) -> if on then Some l else None)
       [ (a.al_drop, "drop"); (a.al_dup, "dup"); (a.al_crash, "crash");
         (a.al_stop, "stop"); (a.al_cheat, "cheat") ])

(* Parse a [--faults drop,dup,crash] style list. *)
let alphabet_of_string (s : string) : (alphabet, string) result =
  let parts =
    List.filter (fun x -> x <> "") (String.split_on_char ',' s)
  in
  List.fold_left
    (fun acc p ->
      match acc with
      | Error _ -> acc
      | Ok a -> (
          match p with
          | "drop" -> Ok { a with al_drop = true }
          | "dup" -> Ok { a with al_dup = true }
          | "crash" -> Ok { a with al_crash = true }
          | "stop" -> Ok { a with al_stop = true }
          | "cheat" -> Ok { a with al_cheat = true }
          | "none" -> Ok a
          | _ -> Error (Printf.sprintf "unknown fault %S" p)))
    (Ok no_faults) parts

type config = {
  c_bal_a : int;
  c_bal_b : int;
  c_ops : op list;
  c_alpha : alphabet;
  c_max_crashes : int;  (* per party *)
  c_retx : int;  (* retransmission budget per session *)
  c_mutation : mutation;
}

let default_config =
  { c_bal_a = 6; c_bal_b = 4; c_ops = [ Op_pay 2 ];
    c_alpha = { al_drop = true; al_dup = true; al_crash = true;
                al_stop = false; al_cheat = false };
    c_max_crashes = 1; c_retx = 1; c_mutation = M_none }

let capacity cfg = cfg.c_bal_a + cfg.c_bal_b

(* A configuration and depth bound sufficient to reach each seeded
   bug's minimal counterexample. Rollback-one-sided needs a timeout,
   cheapest with no retransmission budget; skip-cancel-release only
   manifests after a full lock session plus a full cancel session
   (17 protocol actions), so the fault alphabet is switched off to
   keep that depth cheap to exhaust. *)
let mutation_probe (m : mutation) : config * int =
  match m with
  | M_none -> (default_config, 10)
  | M_rollback_one_sided ->
      ({ default_config with c_mutation = m; c_retx = 0 }, 11)
  | M_double_settle -> ({ default_config with c_mutation = m }, 2)
  | M_lock_no_debit -> ({ default_config with c_mutation = m }, 9)
  | M_skip_cancel_release ->
      ( { default_config with c_mutation = m; c_alpha = no_faults; c_retx = 0 },
        19 )

let init (cfg : config) : state =
  let party bal their =
    { ps_state = 0; ps_my = bal; ps_their = their; ps_lock = None;
      ps_closed = false; ps_phase = Ph_idle; ps_down = Up; ps_crashes = 0;
      ps_precommit = false; ps_seen = []; ps_stash = [] }
  in
  { g_a = party cfg.c_bal_a cfg.c_bal_b; g_b = party cfg.c_bal_b cfg.c_bal_a;
    g_ab = []; g_ba = []; g_log_ab = []; g_log_ba = []; g_cur = None;
    g_sid = 0; g_ops = cfg.c_ops; g_stage = 0; g_exp_a = cfg.c_bal_a;
    g_exp_b = cfg.c_bal_b; g_outcome = O_pending; g_settled = [];
    g_funding_spent = false; g_mempool = None; g_cheats = 0; g_punished = 0 }

(* --- actions ------------------------------------------------------- *)

type action =
  | A_begin  (* start the next scripted protocol step on both parties *)
  | A_deliver of side  (* deliver the head of the queue into this side *)
  | A_drop of side  (* the link loses that message instead *)
  | A_dup of side  (* deliver it and schedule a second copy *)
  | A_crash of side * bool  (* true = restartable (journal intact) *)
  | A_restart of side  (* revive from the journal (Recovery semantics) *)
  | A_retransmit  (* go-back-N: both live senders resend their session log *)
  | A_timeout  (* the deadline fires: symmetric rollback on both parties *)
  | A_cancel  (* cooperatively cancel the pending lock (new session) *)
  | A_dispute of side  (* this party escalates to a non-responsive KES close *)
  | A_cheat of side  (* this party broadcasts its previous commitment *)
  | A_punish of side  (* this (victim) party's watchtower punishes the cheat *)
  | A_close  (* cooperative close once the script is done *)

let action_label = function
  | A_begin -> "begin"
  | A_deliver s -> "deliver->" ^ side_label s
  | A_drop s -> "drop->" ^ side_label s
  | A_dup s -> "dup->" ^ side_label s
  | A_crash (s, true) -> "crash-restartable " ^ side_label s
  | A_crash (s, false) -> "crash-stop " ^ side_label s
  | A_restart s -> "restart " ^ side_label s
  | A_retransmit -> "retransmit"
  | A_timeout -> "timeout"
  | A_cancel -> "cancel-lock"
  | A_dispute s -> "dispute " ^ side_label s
  | A_cheat s -> "cheat " ^ side_label s
  | A_punish s -> "punish by " ^ side_label s
  | A_close -> "coop-close"

(* --- small accessors ----------------------------------------------- *)

let party (st : state) = function A -> st.g_a | B -> st.g_b

let set_party (st : state) (s : side) (p : pstate) =
  match s with A -> { st with g_a = p } | B -> { st with g_b = p }

let queue_into (st : state) = function A -> st.g_ba | B -> st.g_ab

let set_queue_into (st : state) (s : side) (q : msg list) =
  match s with A -> { st with g_ba = q } | B -> { st with g_ab = q }

(* Enqueue a message sent BY [s], appending to its outgoing wire and
   the session resend log. *)
let send (st : state) (s : side) (m : msg) : state =
  match s with
  | A -> { st with g_ab = st.g_ab @ [ m ]; g_log_ab = st.g_log_ab @ [ m ] }
  | B -> { st with g_ba = st.g_ba @ [ m ]; g_log_ba = st.g_log_ba @ [ m ] }

let is_open (st : state) = not (st.g_a.ps_closed || st.g_b.ps_closed)
let both_up (st : state) = st.g_a.ps_down = Up && st.g_b.ps_down = Up

let both_idle (st : state) =
  st.g_a.ps_phase = Ph_idle && st.g_b.ps_phase = Ph_idle

(* Every queued message is undeliverable-or-absent: the deadline can
   only be observed once the clock has drained all deliverable
   traffic, matching the driver's retry loop. *)
let queues_drained (st : state) =
  (st.g_ab = [] || st.g_b.ps_down <> Up)
  && (st.g_ba = [] || st.g_a.ps_down <> Up)

let lock_payer_side (l : lockv) = l.lv_payer
let lock_payee_side (l : lockv) = other l.lv_payer

(* In the scripted model the payee learns the lock witness once the
   lock stage completes — from then on it can redeem the lock on-chain
   in a dispute (the paper's responsive-payee path). *)
let payee_has_witness (st : state) =
  st.g_stage >= 1
  && (match st.g_ops with Op_pay _ :: _ -> true | _ -> false)

(* --- invariant views (shared checker) ------------------------------ *)

module Inv = Monet_fault.Invariant

let view (cfg : config) (st : state) : Inv.channel_view =
  let pv (p : pstate) =
    { Inv.pv_state = p.ps_state; pv_my = p.ps_my; pv_their = p.ps_their;
      pv_lock = p.ps_lock <> None; pv_closed = p.ps_closed }
  in
  { Inv.cv_tag = "channel"; cv_capacity = capacity cfg; cv_a = pv st.g_a;
    cv_b = pv st.g_b; cv_funding_spent = st.g_funding_spent;
    cv_settlements =
      List.rev_map (fun (pa, pb, _) -> (pa, pb)) st.g_settled }

(* Quiescent: no session in flight, the wires and stashes are empty
   and both parties are up — the states where the cross-party
   properties (view consistency, lock resolution, expected wealth)
   are required to hold. *)
let quiescent (st : state) =
  st.g_cur = None && st.g_ab = [] && st.g_ba = []
  && st.g_a.ps_stash = [] && st.g_b.ps_stash = []
  && both_up st

(* Map a shared-checker message to its DESIGN.md §3.13 catalog id. *)
let inv_id (msg : string) : string =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  if has "views diverge" then "INV-3"
  else if has "negative" then "INV-2"
  else if has "off-chain balances" then "INV-1"
  else if has "settled" || has "settlement recorded" then "INV-5"
  else if has "no recorded settlement" || has "key image"
          || has "on-chain payout" then "INV-4"
  else if has "lock left pending" then "INV-6"
  else if has "wealth" then "INV-8"
  else if has "watchtower" || has "punishments" then "INV-7"
  else "INV-?"

(* Check every applicable safety property at [st], returning
   [(catalog id, message)] violations. The every-state properties
   (INV-1/2/4/5) run unconditionally; the cross-party ones (INV-3,
   INV-6, INV-7, INV-8) only at quiescent states, where the protocol
   guarantees them. *)
let check (cfg : config) (st : state) : (string * string) list =
  let v = view cfg st in
  let label = List.map (fun m -> (inv_id m, m)) in
  let every = label (Inv.check_funds v) in
  let quiet =
    if not (quiescent st) then []
    else
      label (Inv.check_consistency v)
      (* lock resolution applies once the payment reached a terminal
         fate — between the lock and unlock sessions a pending lock is
         the protocol working as intended *)
      @ (if st.g_ops = [] then label (Inv.check_locks_resolved v) else [])
      @ (if is_open st then
           label
             (Inv.check_wealth
                [ ("party A", st.g_exp_a, st.g_a.ps_my);
                  ("party B", st.g_exp_b, st.g_b.ps_my) ])
         else [])
      @ label
          (Inv.check_tower
             ~watched:(if is_open st then 1 else 0)
             ~open_channels:(if is_open st then 1 else 0)
             ~counted:st.g_punished
             ~observed:
               (List.length
                  (List.filter
                     (fun (_, _, o) -> o = Set_punish)
                     st.g_settled)))
  in
  every @ quiet

(* --- transition helpers -------------------------------------------- *)

let checkpoint_of (p : pstate) : ck =
  { ck_state = p.ps_state; ck_my = p.ps_my; ck_their = p.ps_their;
    ck_lock = p.ps_lock }

(* Apply a completed refresh session's target to one party — the
   abstract [complete_refresh]. Committed fields move only here (and
   in the unlock path), which is why INV-1 can be checked at every
   state. *)
let complete_party (cfg : config) (st : state) (s : side) (sess : session) :
    state =
  let p = party st s in
  let p =
    match sess.s_kind with
    | S_update amt ->
        let d = if s = A then -amt else amt in
        { p with ps_my = p.ps_my + d; ps_their = p.ps_their - d }
    | S_lock amt ->
        let l = { lv_amount = amt; lv_payer = A } in
        let debit = cfg.c_mutation <> M_lock_no_debit in
        let my, their =
          match s with
          | A -> ((if debit then p.ps_my - amt else p.ps_my), p.ps_their + amt)
          | B -> (p.ps_my + amt, if debit then p.ps_their - amt else p.ps_their)
        in
        { p with ps_my = my; ps_their = their; ps_lock = Some l }
    | S_cancel ->
        let keep_lock = cfg.c_mutation = M_skip_cancel_release && s = B in
        let my, their =
          match p.ps_lock with
          | None -> (p.ps_my, p.ps_their)
          | Some l ->
              let d =
                if s = lock_payer_side l then l.lv_amount else -l.lv_amount
              in
              (p.ps_my + d, p.ps_their - d)
        in
        { p with ps_my = my; ps_their = their;
          ps_lock = (if keep_lock then p.ps_lock else None) }
    | S_unlock -> p (* handled at Lock_open delivery *)
  in
  set_party st s
    { p with ps_state = p.ps_state + 1; ps_phase = Ph_idle;
      ps_precommit = false }

(* Update the script's ledger of record when a session commits. This
   runs in [finish_session], NOT in [complete_party], so party-level
   mutations cannot silently adjust the expectation they are checked
   against. *)
let apply_expected (st : state) (sess : session) : state =
  match sess.s_kind with
  | S_update amt | S_lock amt ->
      { st with g_exp_a = st.g_exp_a - amt; g_exp_b = st.g_exp_b + amt }
  | S_cancel -> (
      (* revert the lock transfer, per the checkpointed lock *)
      match sess.s_ck_a.ck_lock with
      | Some l ->
          let d = if lock_payer_side l = A then l.lv_amount else -l.lv_amount in
          { st with g_exp_a = st.g_exp_a + d; g_exp_b = st.g_exp_b - d }
      | None -> st)
  | S_unlock -> st

(* The session has reached its goal when both parties committed (for
   refresh kinds) or the payer's lock is cleared (unlock — the payee
   cleared its own copy when the session began). *)
let session_done (st : state) (sess : session) : bool =
  match sess.s_kind with
  | S_unlock -> (
      match sess.s_ck_a.ck_lock with
      | Some l -> (party st (lock_payer_side l)).ps_lock = None
      | None -> true)
  | S_update _ | S_lock _ | S_cancel -> both_idle st

(* Close out a finished session: clear the wire logs and stashes,
   advance the script and record the payment outcome.

   A session can reach the driver's quiescence predicate (both idle)
   WITHOUT committing: if both parties crash-restart before the
   precommit, both journals abort the session and both parties wake
   up Idle at the old state. The model checker found this — the
   original [Driver.refresh] reported such a vacuous session as
   successful — so both the model and the driver now classify a
   finish by whether the committed state advanced, and treat the
   vacuous case exactly like a timeout (the caller observes failure
   and the balances stay put). *)
let finish_session (st : state) (sess : session) : state =
  let committed =
    match sess.s_kind with
    | S_unlock -> true (* done ⇔ the payer's lock was released *)
    | S_update _ | S_lock _ | S_cancel ->
        st.g_a.ps_state > sess.s_ck_a.ck_state
        && st.g_b.ps_state > sess.s_ck_b.ck_state
  in
  let st = if committed then apply_expected st sess else st in
  let st =
    { st with g_cur = None; g_log_ab = []; g_log_ba = [];
      g_a = { st.g_a with ps_stash = [] };
      g_b = { st.g_b with ps_stash = [] } }
  in
  match (committed, sess.s_kind) with
  | true, S_lock _ -> { st with g_stage = 1 }
  | true, S_unlock ->
      { st with g_ops = List.tl st.g_ops; g_stage = 0;
        g_outcome = O_delivered }
  | true, S_cancel ->
      { st with g_ops = List.tl st.g_ops; g_stage = 0;
        g_outcome = O_cancelled }
  | true, S_update _ -> { st with g_ops = List.tl st.g_ops }
  | false, S_lock _ ->
      { st with g_ops = List.tl st.g_ops; g_stage = 0; g_outcome = O_failed }
  | false, S_update _ -> { st with g_ops = List.tl st.g_ops }
  | false, (S_unlock | S_cancel) -> st

let maybe_finish (st : state) : state =
  match st.g_cur with
  | Some sess when session_done st sess -> finish_session st sess
  | _ -> st

(* Process a fresh in-session message at [s]; [None] means the
   receiver is not in the right phase (the driver's hold-back
   stash). *)
let process (cfg : config) (st : state) (s : side) (sess : session)
    (m : msg) : state option =
  let p = party st s in
  match (p.ps_phase, m.mk) with
  | Ph_stmt, M_stmt ->
      let st = set_party st s { p with ps_phase = Ph_nonce } in
      Some (send st s { mk = M_nonce; m_sid = sess.s_sid })
  | Ph_nonce, M_nonce ->
      let st = set_party st s { p with ps_phase = Ph_z } in
      Some (send st s { mk = M_z; m_sid = sess.s_sid })
  | Ph_z, M_z ->
      (* The point of no return: the session outcome goes to the
         journal before the Kes_sig reply is released. *)
      let st =
        set_party st s { p with ps_phase = Ph_kes; ps_precommit = true }
      in
      Some (send st s { mk = M_kes; m_sid = sess.s_sid })
  | Ph_kes, M_kes -> Some (complete_party cfg st s sess)
  | Ph_idle, M_lock_open -> (
      match (sess.s_kind, p.ps_lock) with
      | S_unlock, Some _ ->
          (* The payer extracts the witness and releases its lock. *)
          Some (set_party st s { p with ps_lock = None })
      | _ -> None)
  | _ -> None

(* Drain [s]'s stash: retry each held-back message after progress,
   repeating until a full pass makes no progress — the driver's
   retry-pending loop. *)
let rec drain_stash (cfg : config) (st : state) (s : side) : state =
  match st.g_cur with
  | None -> st
  | Some sess ->
      let stash = (party st s).ps_stash in
      let st =
        let p = party st s in
        set_party st s { p with ps_stash = [] }
      in
      let st, left, progressed =
        List.fold_left
          (fun (st, left, progressed) m ->
            if m.m_sid <> sess.s_sid then (st, left, progressed)
            else
              match process cfg st s sess m with
              | Some st' -> (st', left, true)
              | None -> (st, m :: left, progressed))
          (st, [], false) stash
      in
      let p = party st s in
      let st = set_party st s { p with ps_stash = List.rev left } in
      if progressed then drain_stash cfg st s else st

(* Deliver the head of the queue into [s]: mark it seen on first
   delivery, consume duplicates and messages from dead sessions
   silently, stash early messages. *)
let deliver (cfg : config) (st : state) (s : side) : state =
  match queue_into st s with
  | [] -> st
  | m :: rest -> (
      let st = set_queue_into st s rest in
      match st.g_cur with
      | Some sess when m.m_sid = sess.s_sid ->
          let p = party st s in
          let key = (mkind_code m.mk, m.m_sid) in
          if List.mem key p.ps_seen then st
          else
            let seen = List.sort compare (key :: p.ps_seen) in
            let st = set_party st s { p with ps_seen = seen } in
            let st =
              match process cfg st s sess m with
              | Some st' -> drain_stash cfg st' s
              | None ->
                  let p = party st s in
                  set_party st s { p with ps_stash = p.ps_stash @ [ m ] }
            in
            maybe_finish st
      | _ -> st (* stale session: the receiver discards it *))

(* Would delivering the queue head into [s] actually process it?
   Gates [A_dup], so duplication always duplicates a live delivery. *)
let head_is_live (st : state) (s : side) : bool =
  match (queue_into st s, st.g_cur) with
  | m :: _, Some sess ->
      m.m_sid = sess.s_sid
      && not (List.mem (mkind_code m.mk, m.m_sid) (party st s).ps_seen)
  | _ -> false

(* Restore one party to the checkpoint its session took at start:
   phase and precommit cleared, committed fields rewound (a party that
   already committed this session is un-committed — exactly
   [Party.rollback]), and the journal gets a fresh state record. *)
let rollback_party (st : state) (s : side) (c : ck) : state =
  let p = party st s in
  set_party st s
    { p with ps_state = c.ck_state; ps_my = c.ck_my; ps_their = c.ck_their;
      ps_lock = c.ck_lock; ps_phase = Ph_idle; ps_precommit = false;
      ps_stash = [] }

(* Mark the channel settled on-chain with payout [(pay_a, pay_b)]. *)
let settle (st : state) ~(origin : origin) ~(pay_a : int) ~(pay_b : int) :
    state =
  { st with
    g_settled = (pay_a, pay_b, origin) :: st.g_settled;
    g_funding_spent = true;
    g_a = { st.g_a with ps_closed = true };
    g_b = { st.g_b with ps_closed = true };
    g_mempool = None }

(* The payout this party's latest commitment yields, reverting the
   lock amount to its payer unless [with_witness] lets the payee
   redeem it (dispute-with-witness settles at the locked state). *)
let payout_view (st : state) (s : side) ~(with_witness : bool) : int * int =
  let p = party st s in
  let my, their =
    match p.ps_lock with
    | None -> (p.ps_my, p.ps_their)
    | Some l ->
        if with_witness && s = lock_payee_side l then (p.ps_my, p.ps_their)
        else
          let d = if s = lock_payer_side l then l.lv_amount else -l.lv_amount in
          (p.ps_my + d, p.ps_their - d)
  in
  match s with A -> (my, their) | B -> (their, my)

(* --- enabled actions and the transition function ------------------- *)

(* The next scripted session kind, if the script allows starting one. *)
let next_kind (st : state) : skind option =
  match st.g_ops with
  | [] -> None
  | Op_update amt :: _ -> Some (S_update amt)
  | Op_pay amt :: _ -> if st.g_stage = 0 then Some (S_lock amt) else Some S_unlock

let can_begin (st : state) : bool =
  is_open st && st.g_cur = None && both_up st && both_idle st
  && (match next_kind st with
     | None -> false
     | Some S_unlock -> (
         (* the façade finds the payee through A's lock record, and
            [begin_unlock] requires the payee's own lock *)
         match st.g_a.ps_lock with
         | None -> false
         | Some l -> (party st (lock_payee_side l)).ps_lock <> None)
     | Some _ -> true)

let can_cancel (st : state) : bool =
  is_open st && st.g_cur = None && both_up st && both_idle st
  && st.g_stage = 1 && st.g_a.ps_lock <> None

let enabled (cfg : config) (st : state) : action list =
  let al = cfg.c_alpha in
  let acts = ref [] in
  let add c a = if c then acts := a :: !acts in
  add (can_begin st) A_begin;
  List.iter
    (fun s ->
      let q = queue_into st s in
      add (q <> [] && (party st s).ps_down = Up) (A_deliver s);
      add (al.al_drop && q <> []) (A_drop s);
      add (al.al_dup && (party st s).ps_down = Up && head_is_live st s)
        (A_dup s))
    [ A; B ];
  (match st.g_cur with
  | Some sess ->
      add (sess.s_retx > 0 && queues_drained st) A_retransmit;
      add (sess.s_retx = 0 && queues_drained st) A_timeout
  | None -> ());
  add (can_cancel st) A_cancel;
  List.iter
    (fun s ->
      let p = party st s in
      let can_crash =
        is_open st && p.ps_down = Up && p.ps_crashes < cfg.c_max_crashes
      in
      add (al.al_crash && can_crash) (A_crash (s, true));
      add (al.al_stop && can_crash) (A_crash (s, false));
      add (p.ps_down = Down_restart) (A_restart s);
      add (is_open st && st.g_cur = None && p.ps_down = Up) (A_dispute s);
      add
        (al.al_cheat && is_open st && st.g_cur = None && p.ps_down = Up
        && p.ps_state >= 1 && st.g_cheats = 0 && st.g_mempool = None)
        (A_cheat s);
      add
        (is_open st
        && (match st.g_mempool with
           | Some cheater -> s = other cheater
           | None -> false)
        && p.ps_down = Up)
        (A_punish s))
    [ A; B ];
  add
    (is_open st && st.g_cur = None && both_up st && both_idle st
    && st.g_ops = [] && st.g_a.ps_lock = None && st.g_b.ps_lock = None)
    A_close;
  List.rev !acts

(* Apply [a] to [st]; the caller guarantees [a] is enabled. *)
let apply (cfg : config) (st : state) (a : action) : state =
  match a with
  | A_begin -> (
      match next_kind st with
      | None -> st (* not enabled: no-op *)
      | Some kind -> (
      let sid = st.g_sid + 1 in
      let sess =
        { s_sid = sid; s_kind = kind; s_retx = cfg.c_retx;
          s_ck_a = checkpoint_of st.g_a; s_ck_b = checkpoint_of st.g_b }
      in
      let st = { st with g_sid = sid; g_cur = Some sess } in
      match kind with
      | S_update _ | S_lock _ | S_cancel ->
          (* both parties journal the intent and announce their next
             statement *)
          let st =
            set_party st A { st.g_a with ps_phase = Ph_stmt }
          in
          let st = set_party st B { (party st B) with ps_phase = Ph_stmt } in
          let st = send st A { mk = M_stmt; m_sid = sid } in
          send st B { mk = M_stmt; m_sid = sid }
      | S_unlock ->
          (* the payee releases its own lock (journaled) and sends the
             completed pre-signature; the payer stays Idle *)
          let payee =
            match st.g_a.ps_lock with
            | Some l -> lock_payee_side l
            | None -> B
          in
          let p = party st payee in
          let st = set_party st payee { p with ps_lock = None } in
          send st payee { mk = M_lock_open; m_sid = sid }))
  | A_deliver s -> deliver cfg st s
  | A_drop s -> (
      match queue_into st s with
      | [] -> st
      | _ :: rest -> set_queue_into st s rest)
  | A_dup s -> (
      match queue_into st s with
      | [] -> st
      | m :: rest ->
          let st = set_queue_into st s ((m :: rest) @ [ m ]) in
          deliver cfg st s)
  | A_crash (s, restartable) ->
      let p = party st s in
      set_party st s
        { p with
          ps_down = (if restartable then Down_restart else Down_stop);
          ps_crashes = p.ps_crashes + 1;
          ps_stash = [];
          (* volatile state is lost; what the journal restores is
             already determined: a precommit tail resumes at Await_kes,
             anything else aborts to the last committed state *)
          ps_phase = (if p.ps_precommit then Ph_kes else Ph_idle) }
  | A_restart s ->
      let p = party st s in
      set_party st s { p with ps_down = Up }
  | A_retransmit -> (
      match st.g_cur with
      | None -> st
      | Some sess ->
          let st =
            { st with g_cur = Some { sess with s_retx = sess.s_retx - 1 } }
          in
          let st =
            if st.g_a.ps_down = Up then
              { st with g_ab = st.g_ab @ st.g_log_ab }
            else st
          in
          if st.g_b.ps_down = Up then { st with g_ba = st.g_ba @ st.g_log_ba }
          else st)
  | A_timeout -> (
      match st.g_cur with
      | None -> st
      | Some sess ->
          let st = rollback_party st A sess.s_ck_a in
          let st =
            if cfg.c_mutation = M_rollback_one_sided then st
            else rollback_party st B sess.s_ck_b
          in
          let st = { st with g_cur = None; g_log_ab = []; g_log_ba = [] } in
          (match sess.s_kind with
          | S_lock _ ->
              { st with g_ops = List.tl st.g_ops; g_stage = 0;
                g_outcome = O_failed }
          | S_update _ -> { st with g_ops = List.tl st.g_ops }
          | S_unlock | S_cancel -> st))
  | A_cancel ->
      (* a cancel is a fresh refresh session *)
      let sid = st.g_sid + 1 in
      let sess =
        { s_sid = sid; s_kind = S_cancel; s_retx = cfg.c_retx;
          s_ck_a = checkpoint_of st.g_a; s_ck_b = checkpoint_of st.g_b }
      in
      let st = { st with g_sid = sid; g_cur = Some sess } in
      let st = set_party st A { st.g_a with ps_phase = Ph_stmt } in
      let st = set_party st B { (party st B) with ps_phase = Ph_stmt } in
      let st = send st A { mk = M_stmt; m_sid = sid } in
      send st B { mk = M_stmt; m_sid = sid }
  | A_dispute s ->
      let with_witness = payee_has_witness st in
      let pay_a, pay_b = payout_view st s ~with_witness in
      let st = settle st ~origin:Set_dispute ~pay_a ~pay_b in
      let st =
        if cfg.c_mutation = M_double_settle then
          { st with g_settled = (pay_a, pay_b, Set_dispute) :: st.g_settled }
        else st
      in
      let interrupted =
        match st.g_ops with Op_pay _ :: _ -> true | _ -> false
      in
      { st with g_ops = []; g_stage = 0;
        g_outcome = (if interrupted then O_disputed else st.g_outcome) }
  | A_cheat s -> { st with g_mempool = Some s; g_cheats = st.g_cheats + 1 }
  | A_punish s ->
      (* the victim's tower settles at the latest state (pre-lock if a
         lock is pending), with priority over the stale commitment *)
      let pay_a, pay_b = payout_view st s ~with_witness:false in
      let st = settle st ~origin:Set_punish ~pay_a ~pay_b in
      let interrupted =
        match st.g_ops with Op_pay _ :: _ -> true | _ -> false
      in
      { st with g_punished = st.g_punished + 1; g_ops = []; g_stage = 0;
        g_outcome = (if interrupted then O_punished else st.g_outcome) }
  | A_close ->
      let pay_a, pay_b = payout_view st A ~with_witness:false in
      settle st ~origin:Set_close ~pay_a ~pay_b

(* --- canonical state key ------------------------------------------- *)

(* Serialize every distinguishing field into a canonical string, used
   directly as the dedup key. Exact keying (no lossy hashing) keeps
   the exploration sound: two states collide iff they are equal. *)
let key (st : state) : string =
  let b = Buffer.create 128 in
  let i n = Buffer.add_string b (string_of_int n); Buffer.add_char b ',' in
  let bo v = i (if v then 1 else 0) in
  let lock = function
    | None -> i (-1)
    | Some l -> i l.lv_amount; i (match l.lv_payer with A -> 0 | B -> 1)
  in
  let msgs ms =
    i (List.length ms);
    List.iter (fun m -> i (mkind_code m.mk); i m.m_sid) ms
  in
  let pp (p : pstate) =
    i p.ps_state; i p.ps_my; i p.ps_their; lock p.ps_lock; bo p.ps_closed;
    i (phase_code p.ps_phase); i (down_code p.ps_down); i p.ps_crashes;
    bo p.ps_precommit;
    i (List.length p.ps_seen);
    List.iter (fun (k, s) -> i k; i s) p.ps_seen;
    msgs p.ps_stash
  in
  pp st.g_a; pp st.g_b;
  msgs st.g_ab; msgs st.g_ba; msgs st.g_log_ab; msgs st.g_log_ba;
  (match st.g_cur with
  | None -> i (-1)
  | Some s ->
      i s.s_sid; i (skind_code s.s_kind); i s.s_retx;
      List.iter
        (fun c -> i c.ck_state; i c.ck_my; i c.ck_their; lock c.ck_lock)
        [ s.s_ck_a; s.s_ck_b ]);
  i st.g_sid;
  i (List.length st.g_ops);
  List.iter
    (function
      | Op_update n -> i 0; i n
      | Op_pay n -> i 1; i n)
    st.g_ops;
  i st.g_stage; i st.g_exp_a; i st.g_exp_b;
  i (outcome_code st.g_outcome);
  i (List.length st.g_settled);
  List.iter (fun (pa, pb, o) -> i pa; i pb; i (origin_code o)) st.g_settled;
  bo st.g_funding_spent;
  (match st.g_mempool with
  | None -> i (-1)
  | Some A -> i 0
  | Some B -> i 1);
  i st.g_cheats; i st.g_punished;
  Buffer.contents b
