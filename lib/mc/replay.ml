(* Replay an abstract counterexample trace through the concrete stack.

   The model checker's counterexamples are action sequences over the
   abstract model; this module drives the {e real}
   [Party]/[Recovery]/[Close]/[Revoke] machinery along the same
   sequence — real ring signatures, real journals, real ledger — and
   re-checks the shared invariants on the concrete end state. That
   closes the abstraction gap from both sides: a violation seeded at
   the harness level (rollback, settlement bookkeeping) reproduces
   concretely, and a violation seeded {e inside} the abstract party
   transition does not — demonstrating the concrete code lacks that
   bug.

   The replay owns the transport: instead of [Driver.run]'s clock it
   keeps explicit per-direction queues, the go-back-N resend logs, the
   journal-backed dedup sets and the hold-back stashes — the exact
   structures [Driver.run_faulty] uses — and performs one queue
   operation per abstract fault action. Every step runs inside an obs
   span, so a replayed counterexample renders as a span tree. *)

module Ch = Monet_channel.Channel
module Party = Monet_channel.Party
module Msg = Monet_channel.Msg
module Errors = Monet_channel.Errors
module Recovery = Monet_channel.Recovery
module Watchtower = Monet_channel.Watchtower
module Backend = Monet_store.Backend
module Inv = Monet_fault.Invariant
module Tp = Monet_sig.Two_party
module Sc = Monet_ec.Sc
module Trace = Monet_obs.Trace

let role_of = function Model.A -> Tp.Alice | Model.B -> Tp.Bob

type t = {
  rcfg : Model.config;
  c : Ch.channel;
  rep : Ch.report;
  g : Monet_hash.Drbg.t;  (* lock-witness randomness *)
  tower : Watchtower.t;
  host_a : Recovery.host;
  host_b : Recovery.host;
  mutable abs : Model.state;  (* abstract twin, stepped in lockstep *)
  mutable q_to_a : (int * Msg.t) list;  (* (session id, message) *)
  mutable q_to_b : (int * Msg.t) list;
  mutable log_to_a : (int * Msg.t) list;  (* resend logs, oldest first *)
  mutable log_to_b : (int * Msg.t) list;
  mutable stash_a : Msg.t list;  (* held-back early messages *)
  mutable stash_b : Msg.t list;
  mutable ck : (Party.checkpoint * Party.checkpoint) option;
  mutable sid : int;  (* session id new sends are tagged with *)
  mutable lock_y : Sc.t option;  (* the live lock's witness *)
  mutable settled : Ch.payout list;
  mutable errors : string list;  (* concrete steps that failed *)
}

type outcome = {
  ro_final : Model.state;  (* abstract end state of the trace *)
  ro_violations : (string * string) list;  (* concrete end-state check *)
  ro_abstract : (string * string) list;  (* abstract end-state check *)
  ro_errors : string list;  (* oldest first *)
}

let err (h : t) fmt =
  Printf.ksprintf (fun s -> h.errors <- s :: h.errors) fmt

let concrete (h : t) = function Model.A -> h.c.Ch.a | Model.B -> h.c.Ch.b
let host_of (h : t) = function Model.A -> h.host_a | Model.B -> h.host_b

let queue_into (h : t) = function Model.A -> h.q_to_a | Model.B -> h.q_to_b

let set_queue_into (h : t) (s : Model.side) q =
  match s with Model.A -> h.q_to_a <- q | Model.B -> h.q_to_b <- q

let stash_of (h : t) = function Model.A -> h.stash_a | Model.B -> h.stash_b

let set_stash (h : t) (s : Model.side) v =
  match s with Model.A -> h.stash_a <- v | Model.B -> h.stash_b <- v

let cur_sid (h : t) : int option =
  match h.abs.Model.g_cur with
  | Some s -> Some s.Model.s_sid
  | None -> None

(* Enqueue replies sent by [sender] for its current session: wire
   queue plus the go-back-N resend log. *)
let enqueue (h : t) (sender : Model.side) (msgs : Msg.t list) : unit =
  let tagged = List.map (fun m -> (h.sid, m)) msgs in
  match sender with
  | Model.A ->
      h.q_to_b <- h.q_to_b @ tagged;
      h.log_to_b <- h.log_to_b @ tagged
  | Model.B ->
      h.q_to_a <- h.q_to_a @ tagged;
      h.log_to_a <- h.log_to_a @ tagged

(* One handling attempt: real [Party.handle] inside a span. *)
let attempt (h : t) (side : Model.side) (m : Msg.t) : [ `Ok | `Stash ] =
  let p = concrete h side in
  match
    Trace.span ("party." ^ Msg.label m)
      ~attrs:[ ("to", Model.side_label side) ]
      (fun () -> Party.handle p ~env:h.c.Ch.env ~rep:h.rep m)
  with
  | Ok replies ->
      enqueue h side replies;
      `Ok
  | Error (Errors.Bad_state _) -> `Stash (* early under reordering *)
  | Error e ->
      err h "%s rejected %s: %s" (Model.side_label side) (Msg.label m)
        (Errors.to_string e);
      `Ok (* consumed: the concrete party refused it outright *)

(* Retry the receiver's stash after progress, to fixpoint — the
   driver's retry-pending loop. *)
let rec drain_stash (h : t) (side : Model.side) : unit =
  let stash = stash_of h side in
  set_stash h side [];
  let progressed = ref false in
  List.iter
    (fun m ->
      match attempt h side m with
      | `Ok -> progressed := true
      | `Stash -> set_stash h side (stash_of h side @ [ m ]))
    stash;
  if !progressed then drain_stash h side

(* Deliver the queue head into [side]: journal-backed dedup, silent
   drop of dead-session messages, stash on phase mismatch. *)
let deliver (h : t) (side : Model.side) : unit =
  match queue_into h side with
  | [] -> ()
  | (sid, m) :: rest -> (
      set_queue_into h side rest;
      match cur_sid h with
      | Some cur when sid = cur -> (
          let seen = Recovery.seen_table (host_of h side) in
          let key = Msg.to_bytes m in
          if Hashtbl.mem seen key then ()
          else begin
            Hashtbl.replace seen key ();
            Recovery.note_seen (host_of h side) key;
            match attempt h side m with
            | `Ok -> drain_stash h side
            | `Stash -> set_stash h side (stash_of h side @ [ m ])
          end)
      | _ -> () (* stale session: discarded *))

(* Start the abstract state's next scripted session on the concrete
   parties, mirroring [Channel.update]/[lock]/[unlock]/[cancel_lock]:
   checkpoint both parties (the [Driver.with_rollback] capture), call
   the [Party.begin_*] starters, enqueue their openings. *)
let begin_session (h : t) (kind : Model.skind) : unit =
  h.ck <- Some (Party.checkpoint h.c.Ch.a, Party.checkpoint h.c.Ch.b);
  h.sid <- h.abs.Model.g_sid + 1;
  let starter (p : Ch.party) : (Msg.t list, Errors.t) result =
    match kind with
    | Model.S_update amt -> Party.begin_update p ~amount_from_a:amt
    | Model.S_lock amt ->
        let y =
          match h.lock_y with
          | Some y -> y (* restarted lock session after a timeout *)
          | None ->
              let y = Sc.random_nonzero h.g in
              h.lock_y <- Some y;
              y
        in
        let lock_stmt = Monet_sig.Stmt.make ~y ~hp:h.c.Ch.a.Ch.joint.Tp.hp in
        Party.begin_lock p ~payer:Tp.Alice ~amount:amt ~lock_stmt ~timer:5000
    | Model.S_cancel -> Party.begin_cancel p
    | Model.S_unlock ->
        (* unreachable: the unlock arm below never calls [starter] *)
        Error (Errors.Bad_state "unlock has no symmetric starter")
  in
  match kind with
  | Model.S_unlock -> (
      match (h.c.Ch.a.Ch.lock, h.lock_y) with
      | Some lk, Some y -> (
          let payee = if lk.Ch.lk_payer_is_alice then Model.B else Model.A in
          match Party.begin_unlock (concrete h payee) ~y with
          | Ok msgs -> enqueue h payee msgs
          | Error e -> err h "begin unlock: %s" (Errors.to_string e))
      | _ -> err h "begin unlock: no pending lock")
  | _ -> (
      match (starter h.c.Ch.a, starter h.c.Ch.b) with
      | Ok ia, Ok ib ->
          enqueue h Model.A ia;
          enqueue h Model.B ib
      | Error e, _ | _, Error e ->
          err h "begin %s: %s" (Model.skind_label kind) (Errors.to_string e))

(* The deadline fired: abandon the session and roll both parties back
   to the checkpoints, re-journaling the restored state — verbatim
   [Driver.with_rollback]'s timeout arm. The seeded
   [M_rollback_one_sided] bug skips party B. *)
let timeout (h : t) : unit =
  (match h.ck with
  | None -> err h "timeout outside a session"
  | Some (cka, ckb) ->
      Party.rollback h.c.Ch.a cka;
      Party.journal_event h.c.Ch.a (fun jh -> jh.Ch.jh_state ());
      h.stash_a <- [];
      if h.rcfg.Model.c_mutation <> Model.M_rollback_one_sided then begin
        Party.rollback h.c.Ch.b ckb;
        Party.journal_event h.c.Ch.b (fun jh -> jh.Ch.jh_state ());
        h.stash_b <- []
      end);
  h.ck <- None;
  h.log_to_a <- [];
  h.log_to_b <- [];
  (* An abandoned lock session forgets its witness; a surviving lock
     (timeout of the unlock/cancel session) keeps it for the retry. *)
  if h.c.Ch.a.Ch.lock = None && h.c.Ch.b.Ch.lock = None then h.lock_y <- None

(* Execute one abstract action concretely. [h.abs] is the state the
   action fires {e from}; the caller advances it afterwards. *)
let step (h : t) (a : Model.action) : unit =
  match a with
  | Model.A_begin -> (
      match Model.next_kind h.abs with
      | Some k -> begin_session h k
      | None -> err h "begin with an exhausted script")
  | Model.A_cancel -> begin_session h Model.S_cancel
  | Model.A_deliver s -> deliver h s
  | Model.A_drop s -> (
      match queue_into h s with
      | [] -> ()
      | _ :: rest -> set_queue_into h s rest)
  | Model.A_dup s -> (
      match queue_into h s with
      | [] -> ()
      | m :: rest ->
          set_queue_into h s ((m :: rest) @ [ m ]);
          deliver h s)
  | Model.A_crash (s, _) ->
      (* the process dies: volatile stash lost; the heap stays but
         nothing reaches it until restart *)
      set_stash h s []
  | Model.A_restart s -> (
      match Recovery.recover (host_of h s) ~env:h.c.Ch.env with
      | Ok _ -> ()
      | Error e -> err h "recover %s: %s" (Model.side_label s)
                     (Errors.to_string e))
  | Model.A_retransmit ->
      if h.abs.Model.g_b.Model.ps_down = Model.Up then
        h.q_to_a <- h.q_to_a @ h.log_to_a;
      if h.abs.Model.g_a.Model.ps_down = Model.Up then
        h.q_to_b <- h.q_to_b @ h.log_to_b
  | Model.A_timeout -> timeout h
  | Model.A_dispute s -> (
      let pp = match s with Model.A -> h.abs.Model.g_a | Model.B -> h.abs.Model.g_b in
      let lock_witness =
        match pp.Model.ps_lock with
        | Some l
          when s = Model.other l.Model.lv_payer && Model.payee_has_witness h.abs
          -> h.lock_y
        | _ -> None
      in
      match
        Ch.dispute_close ?lock_witness h.c ~proposer:(role_of s)
          ~responsive:false
      with
      | Ok (payout, _) ->
          h.settled <- payout :: h.settled;
          if h.rcfg.Model.c_mutation = Model.M_double_settle then
            h.settled <- payout :: h.settled
      | Error e -> err h "dispute: %s" (Errors.to_string e))
  | Model.A_cheat s -> (
      let cheater = concrete h s in
      let victim = Model.other s in
      let old_state = cheater.Ch.state - 1 in
      let w = Ch.my_witness_at (concrete h victim) ~state:old_state in
      match
        Ch.submit_old_state h.c ~cheater:(role_of s) ~state:old_state
          ~victim_old_wit:w
      with
      | Ok _tx -> Watchtower.watch h.tower h.c ~victim:(role_of victim)
      | Error e -> err h "cheat: %s" (Errors.to_string e))
  | Model.A_punish _ -> (
      let res = Watchtower.tick h.tower in
      match res.Watchtower.punished with
      | [ (_, payout) ] ->
          h.settled <- payout :: h.settled;
          if h.rcfg.Model.c_mutation = Model.M_double_settle then
            h.settled <- payout :: h.settled
      | [] -> err h "punish: the tower found nothing to punish"
      | _ -> err h "punish: multiple punishments on one channel")
  | Model.A_close -> (
      match Ch.cooperative_close h.c with
      | Ok (payout, _) -> h.settled <- payout :: h.settled
      | Error e -> err h "close: %s" (Errors.to_string e))

(* Check the shared invariants on the {e concrete} end state, with the
   same quiescence gating [Model.check] applies to the abstract one. *)
let check_concrete (h : t) : (string * string) list =
  let pv (p : Ch.party) : Inv.party_view =
    { Inv.pv_state = p.Ch.state; pv_my = p.Ch.my_balance;
      pv_their = p.Ch.their_balance; pv_lock = p.Ch.lock <> None;
      pv_closed = p.Ch.closed }
  in
  let env = h.c.Ch.env in
  let cv =
    { Inv.cv_tag = "channel"; cv_capacity = h.c.Ch.a.Ch.capacity;
      cv_a = pv h.c.Ch.a; cv_b = pv h.c.Ch.b;
      cv_funding_spent =
        Hashtbl.mem env.Ch.ledger.Monet_xmr.Ledger.key_images
          (Monet_ec.Point.encode h.c.Ch.a.Ch.joint.Tp.key_image);
      cv_settlements =
        List.rev_map (fun (p : Ch.payout) -> (p.Ch.pay_a, p.Ch.pay_b))
          h.settled }
  in
  let label = List.map (fun m -> (Model.inv_id m, m)) in
  let is_open = not (cv.Inv.cv_a.Inv.pv_closed || cv.Inv.cv_b.Inv.pv_closed) in
  label (Inv.check_funds cv)
  @
  if not (Model.quiescent h.abs) then []
  else
    label (Inv.check_consistency cv)
    @ label (Inv.check_locks_resolved cv)
    @ (if is_open then
         label
           (Inv.check_wealth
              [ ("party A", h.abs.Model.g_exp_a, h.c.Ch.a.Ch.my_balance);
                ("party B", h.abs.Model.g_exp_b, h.c.Ch.b.Ch.my_balance) ])
       else [])
    @ label
        (Inv.check_tower
           ~watched:(Watchtower.watched_count h.tower)
           ~open_channels:(if is_open then 1 else 0)
           ~counted:h.tower.Watchtower.punishments
           ~observed:
             (List.length
                (List.filter
                   (fun (_, _, o) -> o = Model.Set_punish)
                   h.abs.Model.g_settled)))

(* Build the concrete channel for [cfg]: fresh env and funded wallets,
   real establishment over the sync transport, journaled endpoints on
   in-memory backends, one watchtower. *)
let setup (cfg : Model.config) ~(seed : int) : (t, string) result =
  let drbg = Monet_hash.Drbg.of_int seed in
  let ch_cfg =
    { Ch.default_config with vcof_reps = Some 8; ring_size = 5;
      n_escrowers = 4; escrow_threshold = 2 }
  in
  let env = Ch.make_env (Monet_hash.Drbg.split drbg "env") in
  let g = Monet_hash.Drbg.split drbg "wallets" in
  Monet_xmr.Ledger.ensure_decoys g env.Ch.ledger ~amount:cfg.Model.c_bal_a
    ~n:20;
  Monet_xmr.Ledger.ensure_decoys g env.Ch.ledger ~amount:cfg.Model.c_bal_b
    ~n:20;
  let mk_wallet label amount =
    let w = Monet_xmr.Wallet.create ~ring_size:ch_cfg.Ch.ring_size g ~label in
    let kp = Monet_sig.Sig_core.gen g in
    let idx =
      Monet_xmr.Ledger.genesis_output env.Ch.ledger
        { Monet_xmr.Tx.otk = kp.Monet_sig.Sig_core.vk; amount }
    in
    Monet_xmr.Wallet.adopt w ~global_index:idx ~keypair:kp ~amount;
    w
  in
  let wallet_a = mk_wallet "mc/walletA" cfg.Model.c_bal_a in
  let wallet_b = mk_wallet "mc/walletB" cfg.Model.c_bal_b in
  match
    Ch.establish ~cfg:ch_cfg env ~id:1 ~wallet_a ~wallet_b
      ~bal_a:cfg.Model.c_bal_a ~bal_b:cfg.Model.c_bal_b
  with
  | Error e -> Error ("mc replay establish: " ^ Errors.to_string e)
  | Ok (c, _) ->
      let host side p =
        Recovery.attach ~backend:(Backend.mem ()) ~name:side
          ~reseed:(Monet_hash.Drbg.split drbg ("reseed/" ^ side))
          p
      in
      Ok
        { rcfg = cfg; c; rep = Ch.fresh_report ();
          g = Monet_hash.Drbg.split drbg "locks"; tower = Watchtower.create ();
          host_a = host "a" c.Ch.a; host_b = host "b" c.Ch.b;
          abs = Model.init cfg; q_to_a = []; q_to_b = []; log_to_a = [];
          log_to_b = []; stash_a = []; stash_b = []; ck = None; sid = 0;
          lock_y = None; settled = []; errors = [] }

(* Run [trace] through the concrete stack. Each action executes inside
   an [mc.<action>] span; enable tracing beforehand to get the span
   tree. *)
let run ?(seed = 7) (cfg : Model.config) (trace : Model.action list) :
    outcome =
  match setup cfg ~seed with
  | Error e ->
      (* a failed establishment is reported, never swallowed: callers
         checking [ro_errors = []] see it *)
      { ro_final = Model.init cfg; ro_violations = []; ro_abstract = [];
        ro_errors = [ e ] }
  | Ok h ->
  List.iter
    (fun a ->
      Trace.span ("mc." ^ Model.action_label a) (fun () ->
          step h a;
          let prev = h.abs in
          h.abs <- Model.apply cfg prev a;
          (* the session completed: clear the transport bookkeeping,
             as [finish_session] does abstractly *)
          match (prev.Model.g_cur, h.abs.Model.g_cur, a) with
          | Some _, None, Model.A_timeout -> ()
          | Some _, None, _ ->
              h.ck <- None;
              h.log_to_a <- [];
              h.log_to_b <- [];
              h.stash_a <- [];
              h.stash_b <- [];
              if h.c.Ch.a.Ch.lock = None && h.c.Ch.b.Ch.lock = None then
                h.lock_y <- None
          | _ -> ()))
    trace;
  { ro_final = h.abs; ro_violations = check_concrete h;
    ro_abstract = Model.check cfg h.abs; ro_errors = List.rev h.errors }
