(* monet-mc/1: the model checker's machine-readable result format.

   Same discipline as monet-lint/2 and monet-trace/1: the writer emits
   the document, and an independent structural validator re-parses it
   before anything downstream consumes it — the CLI refuses to print a
   document its own validator rejects, so the schema can never drift
   silently. *)

let json_schema_version = "monet-mc/1"

let esc (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Render one exploration result as a monet-mc/1 document. *)
let to_json (cfg : Model.config) (r : Explore.result) : string =
  let b = Buffer.create 1024 in
  let s = r.Explore.r_stats in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"config\":{" json_schema_version);
  Buffer.add_string b
    (Printf.sprintf
       "\"balances\":\"%d/%d\",\"script\":\"%s\",\"faults\":\"%s\",\
        \"max_crashes\":%d,\"retx\":%d,\"mutation\":\"%s\"},"
       cfg.Model.c_bal_a cfg.Model.c_bal_b
       (esc (String.concat "+" (List.map Model.op_label cfg.Model.c_ops)))
       (esc (Model.alphabet_label cfg.Model.c_alpha))
       cfg.Model.c_max_crashes cfg.Model.c_retx
       (Model.mutation_label cfg.Model.c_mutation));
  Buffer.add_string b
    (Printf.sprintf
       "\"depth\":%d,\"states\":%d,\"expansions\":%d,\"transitions\":%d,\
        \"depth_reached\":%d,\"terminal\":%d,\"quiescent\":%d,\
        \"violating\":%d,\"complete\":%d,\"violations\":["
       r.Explore.r_depth s.Explore.st_states s.Explore.st_expansions
       s.Explore.st_transitions s.Explore.st_depth_reached
       s.Explore.st_terminal s.Explore.st_quiescent s.Explore.st_violating
       (if s.Explore.st_complete then 1 else 0));
  List.iteri
    (fun i (v : Explore.violation) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"inv\":\"%s\",\"msg\":\"%s\",\"depth\":%d,\"trace\":["
           (esc v.Explore.v_inv) (esc v.Explore.v_msg) v.Explore.v_depth);
      List.iteri
        (fun j a ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\"" (esc (Model.action_label a))))
        v.Explore.v_trace;
      Buffer.add_string b "]}")
    r.Explore.r_violations;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- structural validation ----------------------------------------
   Exception-free recursive-descent parser over the JSON subset the
   writer emits (objects, arrays, strings, numbers), then the
   monet-mc/1 shape check. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float

let parse_json (s : string) : (json, string) result =
  let n = String.length s in
  let rec skip i =
    if i < n then
      match s.[i] with ' ' | '\n' | '\t' | '\r' -> skip (i + 1) | _ -> i
    else i
  in
  let parse_string i =
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then Error "unterminated string"
      else
        match s.[i] with
        | '"' -> Ok (Buffer.contents b, i + 1)
        | '\\' ->
            if i + 1 >= n then Error "dangling escape"
            else begin
              (match s.[i + 1] with
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'u' -> Buffer.add_char b '?'
              | c -> Buffer.add_char b c);
              go (i + 2 + if s.[i + 1] = 'u' then 4 else 0)
            end
        | c ->
            Buffer.add_char b c;
            go (i + 1)
    in
    go i
  in
  let parse_number i =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec stop j = if j < n && num_char s.[j] then stop (j + 1) else j in
    let j = stop i in
    match float_of_string_opt (String.sub s i (j - i)) with
    | Some f when Float.is_finite f -> Ok (J_num f, j)
    | _ -> Error "bad number"
  in
  let rec parse_value i : (json * int, string) result =
    let i = skip i in
    if i >= n then Error "unexpected end of input"
    else
      match s.[i] with
      | '{' -> parse_obj (i + 1) []
      | '[' -> parse_arr (i + 1) []
      | '"' -> (
          match parse_string (i + 1) with
          | Ok (v, i) -> Ok (J_str v, i)
          | Error e -> Error e)
      | '-' | '0' .. '9' -> parse_number i
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  and parse_obj i acc =
    let i = skip i in
    if i >= n then Error "unterminated object"
    else if s.[i] = '}' then Ok (J_obj (List.rev acc), i + 1)
    else if s.[i] <> '"' then Error "expected object key"
    else
      match parse_string (i + 1) with
      | Error e -> Error e
      | Ok (key, i) -> (
          let i = skip i in
          if i >= n || s.[i] <> ':' then Error "expected ':'"
          else
            match parse_value (i + 1) with
            | Error e -> Error e
            | Ok (v, i) ->
                let i = skip i in
                if i < n && s.[i] = ',' then parse_obj (i + 1) ((key, v) :: acc)
                else if i < n && s.[i] = '}' then
                  Ok (J_obj (List.rev ((key, v) :: acc)), i + 1)
                else Error "expected ',' or '}'")
  and parse_arr i acc =
    let i = skip i in
    if i >= n then Error "unterminated array"
    else if s.[i] = ']' then Ok (J_arr (List.rev acc), i + 1)
    else
      match parse_value i with
      | Error e -> Error e
      | Ok (v, i) ->
          let i = skip i in
          if i < n && s.[i] = ',' then parse_arr (i + 1) (v :: acc)
          else if i < n && s.[i] = ']' then
            Ok (J_arr (List.rev (v :: acc)), i + 1)
          else Error "expected ',' or ']'"
  in
  match parse_value 0 with
  | Error e -> Error e
  | Ok (v, i) ->
      let i = skip i in
      if i <> n then Error "trailing data after document" else Ok v

let require_string name fields =
  match List.assoc_opt name fields with
  | Some (J_str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" name)

let require_count name fields =
  match List.assoc_opt name fields with
  | Some (J_num f) when Float.is_integer f && f >= 0.0 -> Ok ()
  | _ ->
      Error (Printf.sprintf "missing or non-count field %S" name)

let rec check_all check = function
  | [] -> Ok ()
  | x :: rest -> (
      match check x with Error e -> Error e | Ok () -> check_all check rest)

let check_violation (j : json) : (unit, string) result =
  match j with
  | J_obj fields -> (
      match require_string "inv" fields with
      | Error e -> Error e
      | Ok inv when not (String.length inv >= 5 && String.sub inv 0 4 = "INV-")
        -> Error (Printf.sprintf "violation id %S is not an INV- id" inv)
      | Ok _ -> (
          match require_string "msg" fields with
          | Error e -> Error e
          | Ok _ -> (
              match require_count "depth" fields with
              | Error e -> Error e
              | Ok () -> (
                  match List.assoc_opt "trace" fields with
                  | Some (J_arr steps)
                    when List.for_all
                           (function J_str _ -> true | _ -> false)
                           steps -> Ok ()
                  | _ -> Error "missing or malformed \"trace\""))))
  | _ -> Error "violation is not an object"

(* Validate a document against the monet-mc/1 shape. *)
let validate_json (s : string) : (unit, string) result =
  match parse_json s with
  | Error e -> Error ("parse error: " ^ e)
  | Ok (J_obj fields) -> (
      match require_string "schema" fields with
      | Error e -> Error e
      | Ok v when v <> json_schema_version ->
          Error
            (Printf.sprintf "schema is %S, expected %S" v json_schema_version)
      | Ok _ -> (
          match List.assoc_opt "config" fields with
          | Some (J_obj cfg) -> (
              match
                check_all
                  (fun k -> require_string k cfg |> Result.map ignore)
                  [ "balances"; "script"; "faults"; "mutation" ]
              with
              | Error e -> Error e
              | Ok () -> (
                  match
                    check_all
                      (fun k -> require_count k fields)
                      [ "depth"; "states"; "expansions"; "transitions";
                        "depth_reached"; "terminal"; "quiescent";
                        "violating"; "complete" ]
                  with
                  | Error e -> Error e
                  | Ok () -> (
                      match List.assoc_opt "violations" fields with
                      | Some (J_arr vs) -> check_all check_violation vs
                      | _ -> Error "missing or non-array \"violations\"")))
          | _ -> Error "missing or non-object \"config\""))
  | Ok _ -> Error "document is not an object"

(* One-paragraph human summary, for the non-JSON CLI path. *)
let summary (cfg : Model.config) (r : Explore.result) : string =
  let s = r.Explore.r_stats in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "mc: %s exploration to depth %d — %d distinct states, %d transitions \
        (%d terminal, %d quiescent)\n"
       (if s.Explore.st_complete then "complete" else "truncated")
       r.Explore.r_depth s.Explore.st_states s.Explore.st_transitions
       s.Explore.st_terminal s.Explore.st_quiescent);
  Buffer.add_string b
    (Printf.sprintf
       "    script %s, faults [%s], max crashes %d, retx budget %d, mutation %s\n"
       (String.concat "+" (List.map Model.op_label cfg.Model.c_ops))
       (Model.alphabet_label cfg.Model.c_alpha)
       cfg.Model.c_max_crashes cfg.Model.c_retx
       (Model.mutation_label cfg.Model.c_mutation));
  if s.Explore.st_violating = 0 then
    Buffer.add_string b "    no invariant violations\n"
  else begin
    Buffer.add_string b
      (Printf.sprintf "    %d violating state(s); shortest counterexamples:\n"
         s.Explore.st_violating);
    List.iter
      (fun (v : Explore.violation) ->
        Buffer.add_string b
          (Printf.sprintf "    [%s] %s\n      depth %d: %s\n" v.Explore.v_inv
             v.Explore.v_msg v.Explore.v_depth
             (String.concat " ; "
                (List.map Model.action_label v.Explore.v_trace))))
      r.Explore.r_violations
  end;
  Buffer.contents b
