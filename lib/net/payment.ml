(** Multi-hop payments over MoNet (paper Fig. 5): Setup → Lock →
    Unlock, with AMHL suffix-sum locks, onion-delivered hop packets,
    cascade timers (τ decreasing toward the receiver) and cancellation
    / dispute escalation on failure.

    Each phase's computation is measured (CPU time) and its message
    legs counted, so the latency experiments can combine measured
    compute with modelled network latency exactly as the paper does. *)

module Ch = Monet_channel.Channel
open Monet_ec

(** Payment-layer failures, fully typed so fault-path tests can
    pattern-match on the *kind* of failure (and the hop it happened
    at) instead of string-comparing. Channel failures keep their typed
    cause with the hop context that produced them; strings appear only
    at the CLI/bench boundary via {!error_to_string}. *)
type error =
  | Channel of string * Ch.error (* context (e.g. "lock hop 2"), cause *)
  | No_route of string (* the router found no (disjoint) path *)
  | Onion of string (* onion wrap/peel failure *)
  | Packet_rejected of int (* hop (1-based) rejected its AMHL packet *)
  | Timeout of int
      (* hop (1-based) stayed silent past its deadline and the
         escalation machinery could not resolve it either *)
  | Cancelled (* a multipath part was cancelled by the receiver *)

let error_to_string = function
  | Channel (ctx, e) -> Printf.sprintf "%s: %s" ctx (Ch.error_to_string e)
  | No_route s -> "no route: " ^ s
  | Onion s -> "onion: " ^ s
  | Packet_rejected hop -> Printf.sprintf "hop %d rejected its AMHL packet" hop
  | Timeout hop -> Printf.sprintf "hop %d timed out and could not be resolved" hop
  | Cancelled -> "part cancelled"

type phase_stats = {
  mutable setup_ms : float;
  mutable lock_ms : float; (* total across hops *)
  mutable unlock_ms : float; (* total across hops *)
  mutable n_hops : int;
  mutable messages : int;
  mutable bytes : int;
  mutable onion_bytes : int;
}

let fresh_stats () =
  { setup_ms = 0.; lock_ms = 0.; unlock_ms = 0.; n_hops = 0; messages = 0; bytes = 0;
    onion_bytes = 0 }

let timed (f : unit -> 'a) : 'a * float =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.0)

let role_of_payer (hop : Router.hop) : Monet_sig.Two_party.role =
  if hop.Router.h_edge.Graph.e_left = hop.Router.h_payer then
    Monet_sig.Two_party.Alice
  else Monet_sig.Two_party.Bob

(* Network-wide fixed onion layer size: every relay sees the same
   number of bytes regardless of its position (path privacy). Sized
   for paths of up to ~12 hops. *)
let onion_layer_bytes = 4096

let hp_of_edge (e : Graph.edge) : Point.t =
  (Graph.channel_exn e).Ch.a.Ch.joint.Monet_sig.Two_party.hp

type outcome = {
  stats : phase_stats;
  path : Router.hop list;
  succeeded : bool;
}

(** Execute a payment along [path]. [receiver_cooperates] = false
    models a receiver that never reveals the final witness: all locks
    are then cancelled (unlockability). [base_timer] seeds the cascade:
    hop i gets base + (n - i)·delta so earlier hops outlive later
    ones. Each hop locks its own fee-adjusted amount
    ({!Router.amounts}): the receiver nets [amount] and every
    intermediary keeps its forwarding fee when the cascade settles. *)
let execute (t : Graph.t) ~(path : Router.hop list) ~(amount : int)
    ?(receiver_cooperates = true) ?(base_timer = 60_000) ?(timer_delta = 10_000) () :
    (outcome, error) result =
  Monet_obs.Trace.span "payment.execute"
    ~attrs:
      [ ("hops", string_of_int (List.length path));
        ("amount", string_of_int amount) ]
  @@ fun () ->
  let stats = fresh_stats () in
  let hops = Array.of_list path in
  let n = Array.length hops in
  if n = 0 then Error (No_route "empty path")
  else begin
    stats.n_hops <- n;
    let amts = Array.of_list (Router.amounts t ~amount path) in
    (* --- Setup (sender) --- *)
    let (amhl, onion), setup_ms =
      Monet_obs.Trace.span "payment.setup" @@ fun () ->
      timed (fun () ->
          let hps = Array.map (fun h -> hp_of_edge h.Router.h_edge) hops in
          let amhl = Monet_amhl.Amhl.setup t.Graph.g ~hps in
          (* Onion route: the payee of each hop gets its packet. *)
          let route =
            Array.to_list
              (Array.mapi
                 (fun i (h : Router.hop) ->
                   let payee = Graph.peer_of h.Router.h_edge ~node_id:h.Router.h_payer in
                   let pk = (Graph.onion_of (Graph.node t payee)).Monet_sig.Sig_core.vk in
                   let w = Monet_util.Wire.create_writer () in
                   Monet_sig.Stmt.encode_proved w
                     amhl.Monet_amhl.Amhl.packets.(i).Monet_amhl.Amhl.hp_lock;
                   Monet_util.Wire.write_fixed w
                     (Sc.to_bytes_le amhl.Monet_amhl.Amhl.packets.(i).Monet_amhl.Amhl.hp_y);
                   (pk, Monet_util.Wire.contents w))
                 hops)
          in
          let onion = Monet_amhl.Onion.wrap ~pad_to:onion_layer_bytes t.Graph.g route in
          (amhl, onion))
    in
    stats.setup_ms <- setup_ms;
    stats.onion_bytes <- String.length onion;
    stats.messages <- stats.messages + n (* onion forwarded hop by hop *);
    stats.bytes <- stats.bytes + (n * String.length onion);
    (* Relays peel and verify their packets. *)
    let verify_packets () =
      let rec go i onion =
        if i >= n then Ok ()
        else begin
          let h = hops.(i) in
          let payee = Graph.peer_of h.Router.h_edge ~node_id:h.Router.h_payer in
          let node = Graph.node t payee in
          let sk = (Graph.onion_of node).Monet_sig.Sig_core.sk in
          match
            Monet_amhl.Onion.peel
              ~repad:((Graph.wallet_of node).Monet_xmr.Wallet.g, onion_layer_bytes)
              ~sk onion
          with
          | Error e -> Error (Onion e)
          | Ok (_payload, next) ->
              if Monet_amhl.Amhl.verify_hop ~hp:(hp_of_edge h.Router.h_edge)
                   amhl.Monet_amhl.Amhl.packets.(i)
              then go (i + 1) next
              else
                Error (Packet_rejected (i + 1))
        end
      in
      go 0 onion
    in
    match verify_packets () with
    | Error e -> Error e
    | Ok () -> (
        (* --- Lock, sender → receiver --- *)
        let rec lock_all i =
          if i >= n then Ok ()
          else begin
            let h = hops.(i) in
            let timer = base_timer + ((n - i) * timer_delta) in
            let lock_stmt =
              amhl.Monet_amhl.Amhl.locks.(i).Monet_sig.Stmt.stmt
            in
            let r, ms =
              Monet_obs.Trace.span "payment.lock"
                ~attrs:[ ("hop", string_of_int (i + 1)) ]
              @@ fun () ->
              timed (fun () ->
                  Ch.lock (Graph.channel_exn h.Router.h_edge)
                    ~payer:(role_of_payer h) ~amount:amts.(i) ~lock_stmt ~timer)
            in
            stats.lock_ms <- stats.lock_ms +. ms;
            match r with
            | Error e -> Error (Channel (Printf.sprintf "lock hop %d" (i + 1), e))
            | Ok rep ->
                stats.messages <- stats.messages + rep.Ch.messages;
                stats.bytes <- stats.bytes + rep.Ch.bytes;
                lock_all (i + 1)
          end
        in
        match lock_all 0 with
        | Error e -> Error e
        | Ok () ->
            if not receiver_cooperates then begin
              (* Receiver never reveals: every hop cancels after its
                 timer — unlockability without any on-chain action in
                 the cooperative-cancel case. *)
              let rec cancel_all i =
                if i < 0 then Ok ()
                else
                  match
                    Monet_obs.Trace.span "payment.cancel"
                      ~attrs:[ ("hop", string_of_int (i + 1)) ]
                      (fun () ->
                        Ch.cancel_lock (Graph.channel_exn hops.(i).Router.h_edge))
                  with
                  | Error e ->
                      Error (Channel (Printf.sprintf "cancel hop %d" (i + 1), e))
                  | Ok rep ->
                      stats.messages <- stats.messages + rep.Ch.messages;
                      stats.bytes <- stats.bytes + rep.Ch.bytes;
                      cancel_all (i - 1)
              in
              match cancel_all (n - 1) with
              | Error e -> Error e
              | Ok () -> Ok { stats; path; succeeded = false }
            end
            else begin
              (* --- Unlock, receiver → sender --- *)
              let rec unlock_all i (w : Sc.t) =
                if i < 0 then Ok ()
                else begin
                  let r, ms =
                    Monet_obs.Trace.span "payment.unlock"
                      ~attrs:[ ("hop", string_of_int (i + 1)) ]
                    @@ fun () ->
                    timed (fun () ->
                        Ch.unlock (Graph.channel_exn hops.(i).Router.h_edge) ~y:w)
                  in
                  stats.unlock_ms <- stats.unlock_ms +. ms;
                  match r with
                  | Error e ->
                      Error (Channel (Printf.sprintf "unlock hop %d" (i + 1), e))
                  | Ok (rep, extracted) ->
                      stats.messages <- stats.messages + rep.Ch.messages;
                      stats.bytes <- stats.bytes + rep.Ch.bytes;
                      if i = 0 then Ok ()
                      else begin
                        (* The payer of hop i cascades: w_{i-1} = y_{i-1} + w_i *)
                        let w' =
                          Monet_amhl.Amhl.cascade
                            ~y:amhl.Monet_amhl.Amhl.wits.(i - 1) ~w_next:extracted
                        in
                        unlock_all (i - 1) w'
                      end
                end
              in
              match unlock_all (n - 1) amhl.Monet_amhl.Amhl.combined.(n - 1) with
              | Error e -> Error e
              | Ok () -> Ok { stats; path; succeeded = true }
            end)
  end

(** Worst-case failure (the paper's 1-Monero-tx + 2-script-tx bound):
    the receiver neither unlocks nor cooperates to cancel the last
    hop, so its channel is force-closed through the KES at the
    pre-lock state; all earlier hops cancel cooperatively and stay
    open. Call after an [execute] that locked the path — here we run
    the lock phase ourselves for convenience. *)
let fail_with_last_hop_dispute (t : Graph.t) ~(path : Router.hop list)
    ~(amount : int) () : (Ch.payout * phase_stats, error) result =
  let stats = fresh_stats () in
  let hops = Array.of_list path in
  let n = Array.length hops in
  if n = 0 then Error (No_route "empty path")
  else begin
    stats.n_hops <- n;
    let amts = Array.of_list (Router.amounts t ~amount path) in
    let hps = Array.map (fun h -> hp_of_edge h.Router.h_edge) hops in
    let amhl = Monet_amhl.Amhl.setup t.Graph.g ~hps in
    let rec lock_all i =
      if i >= n then Ok ()
      else
        match
          Ch.lock
            (Graph.channel_exn hops.(i).Router.h_edge)
            ~payer:(role_of_payer hops.(i)) ~amount:amts.(i)
            ~lock_stmt:amhl.Monet_amhl.Amhl.locks.(i).Monet_sig.Stmt.stmt
            ~timer:(60_000 + ((n - i) * 10_000))
        with
        | Error e -> Error (Channel (Printf.sprintf "lock hop %d" (i + 1), e))
        | Ok rep ->
            stats.messages <- stats.messages + rep.Ch.messages;
            lock_all (i + 1)
    in
    match lock_all 0 with
    | Error e -> Error e
    | Ok () ->
        (* Hops 1..n-1 cancel cooperatively (their peers are rational
           and want to keep transacting)... *)
        let rec cancel_upto i =
          if i < 0 then Ok ()
          else
            match Ch.cancel_lock (Graph.channel_exn hops.(i).Router.h_edge) with
            | Error e -> Error (Channel (Printf.sprintf "cancel hop %d" (i + 1), e))
            | Ok _ -> cancel_upto (i - 1)
        in
        (match cancel_upto (n - 2) with
        | Error e -> Error e
        | Ok () ->
            (* ...but the receiver stonewalls the last hop, whose payer
               escalates to the KES. *)
            let last = hops.(n - 1) in
            let proposer = role_of_payer last in
            Ch.dispute_close (Graph.channel_exn last.Router.h_edge) ~proposer
              ~responsive:false
            |> Result.map (fun (payout, _rep) -> (payout, stats))
            |> Result.map_error (fun e -> Channel ("dispute close", e)))
  end

(* --- fault recovery: the cascade-timeout escalation engine -------------- *)

(** How each hop of a recoverable payment ended up. *)
type hop_fate =
  | Hop_pending  (** never locked (failure hit an earlier hop first) *)
  | Hop_unlocked  (** paid off-chain, channel stays open *)
  | Hop_cancelled  (** cancelled cooperatively, channel stays open *)
  | Hop_disputed of Ch.payout  (** force-closed through the KES *)
  | Hop_punished of Ch.payout
      (** the watchtower caught a stale broadcast and settled with
          priority *)

type recovered = {
  r_stats : phase_stats;
  r_fates : hop_fate array;
  r_delivered : bool; (* the receiver ended up paid (off- or on-chain) *)
  r_disputes : int;
  r_punishments : int;
  r_timeouts : int; (* channel sessions that hit their deadline *)
}

let ( let* ) r f = match r with Ok x -> f x | Error e -> Error (e : error)

(** Like {!execute}, but faults never escape as hard errors: when a
    hop's channel session times out (its counterparty stayed silent
    past the driver deadline — see {!Monet_channel.Driver}), the
    engine escalates exactly as the paper's Fig. 5 prescribes. It
    waits out the hop's cascade timer τ (advancing [clock]), gives the
    watchtower [tower] a tick (the silent party may have broadcast a
    stale commitment — punished with priority), and otherwise forces
    the stuck channel through the KES dispute path; hops upstream of a
    lock-phase failure cancel cooperatively (escalating the same way
    if their counterparty is silent too). A hop that goes dark
    mid-unlock is settled *at the locked state* with the witness the
    payee already holds, so the cascade continues upstream and every
    honest intermediary stays made whole. Channel errors other than
    timeouts still surface as [Error]: they indicate protocol
    violations, not silence. *)
let execute_recoverable (t : Graph.t) ~(path : Router.hop list) ~(amount : int)
    ?(receiver_cooperates = true) ?tower ?clock ?on_locked
    ?(base_timer = 60_000) ?(timer_delta = 10_000) () : (recovered, error) result
    =
  Monet_obs.Trace.span "payment.execute-recoverable"
    ~attrs:
      [ ("hops", string_of_int (List.length path));
        ("amount", string_of_int amount) ]
  @@ fun () ->
  let stats = fresh_stats () in
  let hops = Array.of_list path in
  let n = Array.length hops in
  if n = 0 then Error (No_route "empty path")
  else begin
    stats.n_hops <- n;
    let fates = Array.make n Hop_pending in
    let timeouts = ref 0 in
    let delivered = ref false in
    let amts = Array.of_list (Router.amounts t ~amount path) in
    let channel_of i = Graph.channel_exn hops.(i).Router.h_edge in
    let tau i = float_of_int (base_timer + ((n - i) * timer_delta)) in
    let charge (rep : Ch.report) =
      stats.messages <- stats.messages + rep.Ch.messages;
      stats.bytes <- stats.bytes + rep.Ch.bytes
    in
    let wait ms =
      match clock with Some ck -> Monet_dsim.Clock.advance ck ms | None -> ()
    in
    (* A tower tick may punish any watched channel (not only the hop
       being resolved): fold every punishment into the fates. *)
    let absorb_tick (r : Monet_channel.Watchtower.tick_result) =
      List.iter
        (fun ((ch : Ch.channel), payout) ->
          Array.iteri
            (fun i (h : Router.hop) ->
              if (Graph.channel_exn h.Router.h_edge).Ch.id = ch.Ch.id then
                match fates.(i) with
                | Hop_pending | Hop_cancelled | Hop_unlocked ->
                    Monet_obs.Trace.event "payment.punish"
                      ~attrs:[ ("hop", string_of_int (i + 1)) ];
                    fates.(i) <- Hop_punished payout
                | Hop_disputed _ | Hop_punished _ -> ())
            hops)
        r.Monet_channel.Watchtower.punished
    in
    let tower_tick () =
      match tower with
      | Some tw -> absorb_tick (Monet_channel.Watchtower.tick tw)
      | None -> ()
    in
    (* A hop went dark past its deadline: wait out its cascade timer,
       let the watchtower race the mempool, then force the channel
       through the KES. *)
    let resolve_stuck i ~(proposer : Monet_sig.Two_party.role) ?lock_witness ()
        : (unit, error) result =
      wait (tau i);
      tower_tick ();
      match fates.(i) with
      | Hop_punished _ -> Ok ()
      | _ -> (
          Monet_obs.Trace.event "payment.dispute"
            ~attrs:[ ("hop", string_of_int (i + 1)) ];
          match
            Ch.dispute_close ?lock_witness (channel_of i) ~proposer
              ~responsive:false
          with
          | Ok (payout, rep) ->
              charge rep;
              fates.(i) <- Hop_disputed payout;
              Ok ()
          | Error e ->
              Error (Channel (Printf.sprintf "dispute hop %d" (i + 1), e)))
    in
    let resolve_cancel i : (unit, error) result =
      if (channel_of i).Ch.a.Ch.closed then Ok () (* already settled on-chain *)
      else
        match Ch.cancel_lock (channel_of i) with
        | Ok rep ->
            charge rep;
            fates.(i) <- Hop_cancelled;
            Ok ()
        | Error e when Monet_channel.Errors.is_timeout e ->
            incr timeouts;
            resolve_stuck i ~proposer:(role_of_payer hops.(i)) ()
        | Error e -> Error (Channel (Printf.sprintf "cancel hop %d" (i + 1), e))
    in
    (* Cancel hops [i] down to 0, each after its timer expires. *)
    let rec cancel_down i : (unit, error) result =
      if i < 0 then Ok ()
      else begin
        wait (tau i);
        let* () = resolve_cancel i in
        cancel_down (i - 1)
      end
    in
    let finish () =
      let count f = Array.fold_left (fun acc x -> if f x then acc + 1 else acc) 0 fates in
      Ok
        {
          r_stats = stats;
          r_fates = fates;
          r_delivered = !delivered;
          r_disputes = count (function Hop_disputed _ -> true | _ -> false);
          r_punishments = count (function Hop_punished _ -> true | _ -> false);
          r_timeouts = !timeouts;
        }
    in
    (* --- Setup: AMHL locks + per-hop verification --- *)
    let hps = Array.map (fun h -> hp_of_edge h.Router.h_edge) hops in
    let amhl, setup_ms = timed (fun () -> Monet_amhl.Amhl.setup t.Graph.g ~hps) in
    stats.setup_ms <- setup_ms;
    let rec verify i =
      if i >= n then Ok ()
      else if
        Monet_amhl.Amhl.verify_hop ~hp:hps.(i) amhl.Monet_amhl.Amhl.packets.(i)
      then verify (i + 1)
      else Error (Packet_rejected (i + 1))
    in
    let* () = verify 0 in
    (* --- Lock, sender → receiver --- *)
    let rec lock_all i : (bool, error) result =
      if i >= n then Ok true
      else begin
        let h = hops.(i) in
        let r, ms =
          timed (fun () ->
              Ch.lock (channel_of i) ~payer:(role_of_payer h)
                ~amount:amts.(i)
                ~lock_stmt:amhl.Monet_amhl.Amhl.locks.(i).Monet_sig.Stmt.stmt
                ~timer:(base_timer + ((n - i) * timer_delta)))
        in
        stats.lock_ms <- stats.lock_ms +. ms;
        match r with
        | Ok rep ->
            charge rep;
            (match on_locked with Some f -> f i | None -> ());
            lock_all (i + 1)
        | Error e when Monet_channel.Errors.is_timeout e ->
            (* The stuck hop resolves first (its rolled-back channel is
               force-closed at the last complete state), then the
               already-locked upstream hops cancel, closest to the
               failure point first. *)
            incr timeouts;
            let* () = resolve_stuck i ~proposer:(role_of_payer h) () in
            let* () = cancel_down (i - 1) in
            Ok false
        | Error e -> Error (Channel (Printf.sprintf "lock hop %d" (i + 1), e))
      end
    in
    let* complete = lock_all 0 in
    if not complete then finish ()
    else if not receiver_cooperates then begin
      (* The receiver holds a completed lock and goes dark: every hop
         waits out its timer and cancels; silent counterparties turn
         the cancel into a KES dispute at the pre-lock state. *)
      let* () = cancel_down (n - 1) in
      finish ()
    end
    else begin
      (* --- Unlock, receiver → sender --- *)
      let rec unlock_all i (w : Sc.t) : (unit, error) result =
        if i < 0 then Ok ()
        else begin
          let continue_up () =
            if i = 0 then Ok ()
            else
              unlock_all (i - 1)
                (Monet_amhl.Amhl.cascade ~y:amhl.Monet_amhl.Amhl.wits.(i - 1)
                   ~w_next:w)
          in
          let r, ms = timed (fun () -> Ch.unlock (channel_of i) ~y:w) in
          stats.unlock_ms <- stats.unlock_ms +. ms;
          match r with
          | Ok (rep, _extracted) ->
              charge rep;
              fates.(i) <- Hop_unlocked;
              if i = n - 1 then delivered := true;
              continue_up ()
          | Error e when Monet_channel.Errors.is_timeout e ->
              (* The payee holds the witness: settle the locked state
                 on-chain (dispute with [lock_witness]) unless the
                 tower already punished a stale broadcast. *)
              incr timeouts;
              let payee =
                if role_of_payer hops.(i) = Monet_sig.Two_party.Alice then
                  Monet_sig.Two_party.Bob
                else Monet_sig.Two_party.Alice
              in
              let* () = resolve_stuck i ~proposer:payee ~lock_witness:w () in
              (match fates.(i) with
              | Hop_disputed _ ->
                  (* The witness is on-chain: the payer extracts it and
                     the cascade continues upstream. *)
                  if i = n - 1 then delivered := true;
                  continue_up ()
              | _ ->
                  (* Punished at the pre-lock state: the witness was
                     never revealed, so upstream hops cancel. *)
                  cancel_down (i - 1))
          | Error e ->
              Error (Channel (Printf.sprintf "unlock hop %d" (i + 1), e))
        end
      in
      let* () = unlock_all (n - 1) amhl.Monet_amhl.Amhl.combined.(n - 1) in
      finish ()
    end
  end

(** Route and pay in one step. *)
let pay (t : Graph.t) ~(src : int) ~(dst : int) ~(amount : int)
    ?(receiver_cooperates = true) () : (outcome, error) result =
  match Router.find_path t ~src ~dst ~amount with
  | Error e -> Error (No_route e)
  | Ok path -> execute t ~path ~amount ~receiver_cooperates ()

(** End-to-end latency under the paper's accounting: per hop, one
    network latency plus the measured per-hop computation. *)
let latency_ms (o : outcome) ~(network_ms : float) : float =
  let n = float_of_int o.stats.n_hops in
  let compute = o.stats.setup_ms +. o.stats.lock_ms +. o.stats.unlock_ms in
  (n *. network_ms) +. compute

(** Pessimistic accounting: every sequential message leg pays
    latency. *)
let latency_full_rounds_ms (o : outcome) ~(network_ms : float) : float =
  let compute = o.stats.setup_ms +. o.stats.lock_ms +. o.stats.unlock_ms in
  (float_of_int o.stats.messages *. network_ms) +. compute

(* --- fees and multi-path ------------------------------------------------ *)

(** Per-hop amounts when intermediaries charge forwarding fees —
    {!Router.amounts} under the payment-layer name callers know: the
    receiver nets [amount]; hop i additionally carries the fees of
    every intermediary downstream of it, each of whom keeps its fee
    (base + proportional, {!Graph.fee_of}) as the difference between
    what it receives and what it forwards. *)
let amounts_with_fees (t : Graph.t) ~(path : Router.hop list) ~(amount : int) :
    int list =
  Router.amounts t ~amount path

(** {!execute} (which charges per-hop fees itself) paired with the
    total the sender paid on the first hop. *)
let execute_with_fees (t : Graph.t) ~(path : Router.hop list) ~(amount : int) () :
    (outcome * int, error) result =
  match amounts_with_fees t ~path ~amount with
  | [] -> Error (No_route "empty path")
  | total_sent :: _ ->
      Result.map (fun o -> (o, total_sent)) (execute t ~path ~amount ())

(** Multi-path payment: split [amount] greedily over capacity-disjoint
    routes (each part bounded by its bottleneck). Parts are individual
    AMHL payments; the split is all-or-nothing per part but not across
    parts (full AMP atomicity would share the receiver's witness
    across parts — noted as future work). Returns the per-part
    (path, amount) breakdown. *)
let pay_multipath (t : Graph.t) ~(src : int) ~(dst : int) ~(amount : int)
    ?(max_parts = 4) () : ((Router.hop list * int) list, error) result =
  let rec plan remaining used_edges parts_left acc =
    if remaining = 0 then Ok (List.rev acc)
    else if parts_left = 0 then Error (No_route "amount does not fit in max_parts routes")
    else begin
      (* Find a path avoiding edges already used by earlier parts. *)
      match Router.find_path_avoiding t ~src ~dst ~amount:1 ~avoid:used_edges with
      | Error _ -> Error (No_route "insufficient disjoint capacity")
      | Ok path ->
          let bottleneck =
            List.fold_left
              (fun acc (h : Router.hop) ->
                min acc (Graph.balance_of h.Router.h_edge ~node_id:h.Router.h_payer))
              max_int path
          in
          (* Fee headroom: the first hop carries part + fees, so shrink
             the part until amount-plus-fees fits the bottleneck
             (fees are monotone in the amount, so this converges). *)
          let rec fit p =
            if p <= 0 then 0
            else if p + Router.fees t ~amount:p path <= bottleneck then p
            else fit (bottleneck - Router.fees t ~amount:p path)
          in
          let part = fit (min remaining bottleneck) in
          if part <= 0 then Error (No_route "no capacity")
          else begin
            let used' =
              List.fold_left (fun acc (h : Router.hop) -> h.Router.h_edge.Graph.e_id :: acc)
                used_edges path
            in
            plan (remaining - part) used' (parts_left - 1) ((path, part) :: acc)
          end
    end
  in
  match plan amount [] max_parts [] with
  | Error e -> Error e
  | Ok parts ->
      let rec run = function
        | [] -> Ok parts
        | (path, part) :: rest -> (
            match execute t ~path ~amount:part () with
            | Ok o when o.succeeded -> run rest
            | Ok _ -> Error Cancelled
            | Error e -> Error e)
      in
      run parts
