(** Domain-sharded workload execution (DESIGN.md §3.10): the payment
    population is statically partitioned by channel id into
    independent shards — each with its own topology slice, DRBG split
    from the root seed, discrete-event clock and ledger — and the
    shards run on separate OCaml 5 domains, merging only at the block
    boundary. A parallel run is byte-identical to a sequential run of
    the same plan. *)

type plan = {
  p_seed : string;
  p_domains : int;
  p_specs : Topo.spec array;
  p_cfgs : Workload.config array;
  p_balance : int;
  p_fee_base : int;
  p_fee_ppm : int;
}
(** A fully-determined execution plan: per-shard topologies and
    workload slices. Pure data — building it runs nothing. *)

type merged = {
  domains : int;
  shards : Workload.report array;
  agg_offered : int;
  agg_completed : int;
  agg_no_route : int;
  agg_success_rate : float;
  agg_tps : float;
  agg_sim_ms : float;
  agg_fees : int;
  conserved : bool;
}
(** Block-boundary merge of the shard reports. [agg_tps] is total
    completions over the slowest shard's sim-time span ([agg_sim_ms]);
    [conserved] holds iff every shard conserved total wealth. *)

val plan :
  seed:string ->
  domains:int ->
  shape:string ->
  nodes:int ->
  ?balance:int ->
  ?fee_base:int ->
  ?fee_ppm:int ->
  Workload.config ->
  (plan, string) result
(** [plan ~seed ~domains ~shape ~nodes cfg] slices [nodes] and
    [cfg.n_payments] evenly over [domains] shards ([arrival_rate]
    pro-rated by slice), with a [shape]-shaped topology per shard
    ("hub_spoke", "scale_free" or "grid"). Errors on degenerate
    inputs (fewer than two nodes or one payment per shard). *)

val run : ?parallel:bool -> plan -> (merged, string) result
(** Execute the plan — on one spawned domain per shard by default, or
    on the calling domain in shard order with [~parallel:false]. Both
    modes produce identical results. *)

val summary : merged -> string
(** Exact textual rendering (hex floats) for byte-for-byte determinism
    checks and logs. *)
