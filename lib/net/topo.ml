(** Synthetic channel-network topologies (DESIGN.md §3.9): hub/spoke
    (the paper's merchant-hub deployment story), Barabási–Albert
    scale-free (what organically grown PCNs like Lightning measure as)
    and 2-D grids (the worst case for path length). All generators are
    deterministic functions of the [Drbg] seed and build
    population-scale graphs over balance-only simulated channels
    ({!Graph.open_sim_channel}); node crypto stays lazy and is never
    forced. *)

module Drbg = Monet_hash.Drbg

type spec =
  | Hub_spoke of { hubs : int; spokes_per_hub : int }
  | Scale_free of { nodes : int; m : int }
  | Grid of { rows : int; cols : int }

let name = function
  | Hub_spoke _ -> "hub_spoke"
  | Scale_free _ -> "scale_free"
  | Grid _ -> "grid"

let n_nodes_of = function
  | Hub_spoke { hubs; spokes_per_hub } -> hubs * (1 + spokes_per_hub)
  | Scale_free { nodes; _ } -> nodes
  | Grid { rows; cols } -> rows * cols

(* Standard shapes for a target population, used by the CLI and the
   bench harness: hub count scales with sqrt(n), grids are as square
   as possible, scale-free attaches m = 2 edges per arrival. *)
let spec_of_string (s : string) ~(nodes : int) : (spec, string) result =
  if nodes < 4 then Error "need at least 4 nodes"
  else
    match s with
    | "hub_spoke" | "hub" ->
        let hubs = max 2 (int_of_float (sqrt (float_of_int nodes)) / 2) in
        let spokes = max 1 ((nodes / hubs) - 1) in
        Ok (Hub_spoke { hubs; spokes_per_hub = spokes })
    | "scale_free" | "ba" -> Ok (Scale_free { nodes; m = 2 })
    | "grid" ->
        let rows = max 2 (int_of_float (sqrt (float_of_int nodes))) in
        let cols = max 2 ((nodes + rows - 1) / rows) in
        Ok (Grid { rows; cols })
    | _ -> Error (Printf.sprintf "unknown topology %S (hub_spoke|scale_free|grid)" s)

let validate = function
  | Hub_spoke { hubs; spokes_per_hub } ->
      if hubs < 1 || spokes_per_hub < 0 then Error "hub_spoke: need hubs >= 1, spokes >= 0"
      else Ok ()
  | Scale_free { nodes; m } ->
      if m < 1 then Error "scale_free: need m >= 1"
      else if nodes < m + 2 then Error "scale_free: need nodes >= m + 2"
      else Ok ()
  | Grid { rows; cols } ->
      if rows < 1 || cols < 1 then Error "grid: need rows, cols >= 1" else Ok ()

let add_nodes t n =
  for i = 0 to n - 1 do
    ignore (Graph.add_node t ~name:(Printf.sprintf "n%d" i))
  done

let build_hub_spoke t ~hubs ~spokes_per_hub ~balance =
  add_nodes t (hubs * (1 + spokes_per_hub));
  (* Hubs 0..hubs-1 form a clique over trunk channels sized to carry
     their spokes' aggregate traffic; spokes hang off one hub each. *)
  let trunk = balance * max 1 spokes_per_hub in
  for i = 0 to hubs - 1 do
    for j = i + 1 to hubs - 1 do
      ignore (Graph.open_sim_channel t ~left:i ~right:j ~bal_left:trunk ~bal_right:trunk)
    done
  done;
  for s = 0 to (hubs * spokes_per_hub) - 1 do
    let spoke = hubs + s in
    let hub = s mod hubs in
    ignore
      (Graph.open_sim_channel t ~left:spoke ~right:hub ~bal_left:balance
         ~bal_right:balance)
  done

let build_scale_free t rng ~nodes ~m ~balance =
  add_nodes t nodes;
  (* Barabási–Albert preferential attachment: keep every edge endpoint
     in a bag and sample targets from it, so a node's chance of
     gaining an edge is proportional to its degree. Seed with a
     clique on the first m+1 nodes. *)
  let bag = ref (Array.make 64 0) in
  let bag_n = ref 0 in
  let push v =
    if !bag_n = Array.length !bag then
      bag := Array.append !bag (Array.make !bag_n 0);
    !bag.(!bag_n) <- v;
    incr bag_n
  in
  let connect a b =
    ignore (Graph.open_sim_channel t ~left:a ~right:b ~bal_left:balance ~bal_right:balance);
    push a;
    push b
  in
  let m0 = m + 1 in
  for i = 0 to m0 - 1 do
    for j = i + 1 to m0 - 1 do
      connect i j
    done
  done;
  for v = m0 to nodes - 1 do
    (* m distinct targets per arrival; rejection-sample duplicates,
       falling back to the lowest unused id if the bag is too
       concentrated to yield m distinct nodes quickly. *)
    let chosen = ref [] in
    let attempts = ref 0 in
    while List.length !chosen < m && !attempts < 50 * m do
      incr attempts;
      let cand = !bag.(Drbg.int rng !bag_n) in
      if cand <> v && not (List.mem cand !chosen) then chosen := cand :: !chosen
    done;
    let fallback = ref 0 in
    while List.length !chosen < m do
      if !fallback <> v && not (List.mem !fallback !chosen) then
        chosen := !fallback :: !chosen;
      incr fallback
    done;
    List.iter (fun u -> connect v u) !chosen
  done

let build_grid t ~rows ~cols ~balance =
  add_nodes t (rows * cols);
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore
          (Graph.open_sim_channel t ~left:(id r c) ~right:(id r (c + 1))
             ~bal_left:balance ~bal_right:balance);
      if r + 1 < rows then
        ignore
          (Graph.open_sim_channel t ~left:(id r c) ~right:(id (r + 1) c)
             ~bal_left:balance ~bal_right:balance)
    done
  done

let build ?(balance = 1_000_000) ?(fee_base = 0) ?(fee_ppm = 0) (g : Drbg.t)
    (spec : spec) : (Graph.t, string) result =
  match validate spec with
  | Error e -> Error e
  | Ok () ->
      if balance < 0 then Error "balance must be non-negative"
      else begin
        (* Two independent child generators: one owns the graph's node
           streams, one drives topology randomness, so adding a
           generator never perturbs node key derivation. *)
        let gg = Drbg.split g "graph" in
        let rng = Drbg.split g "topo" in
        let t = Graph.create gg in
        (match spec with
        | Hub_spoke { hubs; spokes_per_hub } ->
            build_hub_spoke t ~hubs ~spokes_per_hub ~balance
        | Scale_free { nodes; m } -> build_scale_free t rng ~nodes ~m ~balance
        | Grid { rows; cols } -> build_grid t ~rows ~cols ~balance);
        if fee_base <> 0 || fee_ppm <> 0 then
          for v = 0 to Graph.n_nodes t - 1 do
            Graph.set_fee_policy t v ~base:fee_base ~ppm:fee_ppm
          done;
        Ok t
      end
