(** Synthetic channel-network topology generators, deterministic in
    the [Drbg] seed, building population-scale graphs over simulated
    (balance-only) channels — see DESIGN.md §3.9. *)

(** A topology shape: hub/spoke (hubs form a clique with trunk
    capacity, spokes hang off one hub each), Barabási–Albert
    scale-free ([m] channels per arriving node, preferential
    attachment), or a 2-D grid with 4-neighbor channels. *)
type spec =
  | Hub_spoke of { hubs : int; spokes_per_hub : int }
  | Scale_free of { nodes : int; m : int }
  | Grid of { rows : int; cols : int }

(** Stable short name of a spec's shape ("hub_spoke", "scale_free",
    "grid") — used in bench rows and CLI output. *)
val name : spec -> string

(** Number of nodes the spec will generate. *)
val n_nodes_of : spec -> int

(** Parse a shape name ("hub_spoke"/"hub", "scale_free"/"ba", "grid")
    into a spec with standard proportions for a target population of
    [nodes]. *)
val spec_of_string : string -> nodes:int -> (spec, string) result

(** Build the graph: every channel opens with [balance] on each side
    (hub trunks get [balance × spokes]); every node gets the
    forwarding-fee policy [fee_base]/[fee_ppm] (defaults 0, i.e. free
    forwarding). Deterministic in [g]. Errors on degenerate specs
    (e.g. scale-free with fewer than [m + 2] nodes). *)
val build :
  ?balance:int ->
  ?fee_base:int ->
  ?fee_ppm:int ->
  Monet_hash.Drbg.t ->
  spec ->
  (Graph.t, string) result
