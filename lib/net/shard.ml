(** Domain-sharded workload execution: a payment population split into
    independent shards, each run on its own OCaml 5 domain
    (DESIGN.md §3.10).

    Channels never span shards — the partition is static, by channel
    id: shard i owns every channel of subpopulation i, so no locks,
    no cross-domain liquidity and no work stealing. Each shard gets a
    domain-local DRBG split from the root seed, its own discrete-event
    clock and its own ledger (graph); ledgers are merged only at the
    block boundary, after every shard has drained, by aggregating the
    per-shard reports.

    Determinism: the plan (per-shard topologies, seeds and workload
    slices) is a pure function of the inputs, and shards share no
    mutable state, so a parallel run is byte-identical to a sequential
    run of the same plan — {!run} with [~parallel:false] executes the
    identical shard closures on the calling domain, and
    test/test_netscale.ml pins the equality.

    Aggregate TPS is measured, per shard, on its simulated clock: the
    network-wide figure is total completions over the slowest shard's
    sim-time span (the block boundary — every shard has drained by
    then). Saturated topologies are bottlenecked on hub service time,
    so sharding the population over D domains multiplies available
    hub capacity and the measured TPS scales with D (BENCH_net.json's
    [domains] dimension). *)

module Drbg = Monet_hash.Drbg

type plan = {
  p_seed : string;
  p_domains : int;
  p_specs : Topo.spec array; (* per-shard topology *)
  p_cfgs : Workload.config array; (* per-shard workload slice *)
  p_balance : int;
  p_fee_base : int;
  p_fee_ppm : int;
}

type merged = {
  domains : int;
  shards : Workload.report array; (* in shard order *)
  agg_offered : int;
  agg_completed : int;
  agg_no_route : int;
  agg_success_rate : float;
  agg_tps : float; (* Σ completed / max shard sim-span *)
  agg_sim_ms : float; (* slowest shard: the block boundary *)
  agg_fees : int;
  conserved : bool; (* every shard conserved wealth *)
}

let m_shard_runs = Monet_obs.Metrics.counter "net.shard.run"

(* Spread [total] over [n] slots as evenly as possible (first slots
   take the remainder), so the plan is a pure function of the input. *)
let split_evenly (total : int) (n : int) : int array =
  Array.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

let plan ~(seed : string) ~(domains : int) ~(shape : string) ~(nodes : int)
    ?(balance = 10_000) ?(fee_base = 0) ?(fee_ppm = 0) (cfg : Workload.config) :
    (plan, string) result =
  if domains < 1 then Error "domains must be >= 1"
  else if nodes < 2 * domains then Error "need at least two nodes per shard"
  else if cfg.Workload.n_payments < domains then
    Error "need at least one payment per shard"
  else begin
    let node_counts = split_evenly nodes domains in
    let payment_counts = split_evenly cfg.Workload.n_payments domains in
    let specs = Array.make domains (Topo.Grid { rows = 1; cols = 2 }) in
    let rec build i =
      if i >= domains then Ok ()
      else
        match Topo.spec_of_string shape ~nodes:node_counts.(i) with
        | Error e -> Error e
        | Ok spec ->
            specs.(i) <- spec;
            build (i + 1)
    in
    match build 0 with
    | Error e -> Error e
    | Ok () ->
        let total_payments = float_of_int cfg.Workload.n_payments in
        let cfgs =
          Array.init domains (fun i ->
              {
                cfg with
                Workload.n_payments = payment_counts.(i);
                arrival_rate =
                  cfg.Workload.arrival_rate
                  *. (float_of_int payment_counts.(i) /. total_payments);
              })
        in
        Ok
          {
            p_seed = seed;
            p_domains = domains;
            p_specs = specs;
            p_cfgs = cfgs;
            p_balance = balance;
            p_fee_base = fee_base;
            p_fee_ppm = fee_ppm;
          }
  end

(* One shard, self-contained: domain-local DRBGs split from the
   shard's root, private graph, private clock. Safe to run on any
   domain. *)
let run_shard (p : plan) (rng : Drbg.t) (i : int) : (Workload.report, string) result
    =
  Monet_obs.Metrics.bump m_shard_runs;
  let g_topo = Drbg.split rng "topo" in
  let g_wl = Drbg.split rng "workload" in
  match
    Topo.build ~balance:p.p_balance ~fee_base:p.p_fee_base ~fee_ppm:p.p_fee_ppm
      g_topo p.p_specs.(i)
  with
  | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
  | Ok graph -> (
      match Workload.run g_wl graph p.p_cfgs.(i) with
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
      | Ok r -> Ok r)

let merge (p : plan) (reports : Workload.report array) : merged =
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
  let offered = sum (fun r -> r.Workload.offered) in
  let completed = sum (fun r -> r.Workload.completed) in
  let sim_ms =
    Array.fold_left (fun acc r -> Float.max acc r.Workload.sim_ms) 0.0 reports
  in
  {
    domains = p.p_domains;
    shards = reports;
    agg_offered = offered;
    agg_completed = completed;
    agg_no_route = sum (fun r -> r.Workload.no_route);
    agg_success_rate =
      (if offered = 0 then 0.0
       else float_of_int completed /. float_of_int offered);
    agg_tps =
      (if sim_ms <= 0.0 then 0.0
       else float_of_int completed /. (sim_ms /. 1000.0));
    agg_sim_ms = sim_ms;
    agg_fees = sum (fun r -> r.Workload.fees_paid);
    conserved = Array.for_all (fun r -> r.Workload.conserved) reports;
  }

(** Execute a plan. With [parallel] (default), each shard runs on its
    own spawned domain; otherwise the same shard closures run in
    shard order on the calling domain — the results are identical
    either way (the determinism contract above). *)
let run ?(parallel = true) (p : plan) : (merged, string) result =
  (* The group's precomputed tables are process-wide lazies, and
     forcing a lazy concurrently raises CamlinternalLazy.Undefined —
     materialize them unconditionally at entry, before any worker can
     race (the lint domain-safety pass checks every spawn site is
     covered by a pre-spawn force like this one). *)
  Monet_ec.Point.force_precomp ();
  (* Split every shard's root DRBG from the seed on the calling
     domain, in shard order, before anything runs: the derivation
     order — hence every shard's randomness — is independent of the
     execution interleaving. *)
  let root = Drbg.create ~seed:p.p_seed in
  let rngs =
    Array.init p.p_domains (fun i -> Drbg.split root (Printf.sprintf "shard-%d" i))
  in
  let results =
    if parallel && p.p_domains > 1 then
      Array.map Domain.join
        (Array.init p.p_domains (fun i ->
             Domain.spawn (fun () -> run_shard p rngs.(i) i)))
    else Array.init p.p_domains (fun i -> run_shard p rngs.(i) i)
  in
  let reports, errors =
    Array.fold_right
      (fun r (oks, errs) ->
        match r with
        | Ok v -> (v :: oks, errs)
        | Error e -> (oks, e :: errs))
      results ([], [])
  in
  match errors with
  | e :: _ -> Error e
  | [] -> Ok (merge p (Array.of_list reports))

(* Exact (hex-float) rendering so determinism can be asserted
   byte-for-byte across parallel and sequential execution. *)
let summary (m : merged) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "domains=%d offered=%d completed=%d no_route=%d fees=%d \
                     conserved=%b tps=%h sim_ms=%h success=%h\n"
       m.domains m.agg_offered m.agg_completed m.agg_no_route m.agg_fees
       m.conserved m.agg_tps m.agg_sim_ms m.agg_success_rate);
  Array.iteri
    (fun i (r : Workload.report) ->
      Buffer.add_string b
        (Printf.sprintf
           "  shard=%d offered=%d completed=%d no_route=%d hops=%d fees=%d \
            depleted=%d conserved=%b tps=%h sim_ms=%h\n"
           i r.Workload.offered r.Workload.completed r.Workload.no_route
           r.Workload.total_hops r.Workload.fees_paid r.Workload.depleted_final
           r.Workload.conserved r.Workload.tps r.Workload.sim_ms))
    m.shards;
  Buffer.contents b
