(** Open-arrival payment workload over a channel graph: Poisson
    arrivals on the discrete-event clock, fee-aware routing, simulated
    liquidity settlement and a per-node queueing model
    ([hop_proc_ms] service time per hop at every paying node), so
    network TPS is {e measured} on the sim clock rather than
    extrapolated from one channel. See DESIGN.md §3.9. *)

(** Workload shape. [n_payments] arrivals at [arrival_rate] per
    sim-second network-wide; amounts uniform in
    [[amount_min, amount_max]]; [hop_proc_ms] per-hop service time;
    liquidity sampled every [sample_every_ms] of sim-time. *)
type config = {
  n_payments : int;
  arrival_rate : float;
  amount_min : int;
  amount_max : int;
  hop_proc_ms : float;
  sample_every_ms : float;
}

(** 1k payments at 100/s, amounts 10–1000, 20 ms per hop, sampling
    every sim-second. *)
val default_config : config

(** One point of the liquidity-depletion curve: at [s_time_ms] of
    sim-time, [s_depleted] open edges could no longer carry a
    minimum-amount payment from their poorer side, with the cumulative
    completion and routing-failure counts at that instant. *)
type sample = {
  s_time_ms : float;
  s_depleted : int;
  s_completed : int;
  s_no_route : int;
}

(** Run outcome. [tps] is completions over the sim-time span — the
    measured network throughput; [conserved] asserts
    {!Graph.total_balance} was unchanged by the whole run (fees only
    move money between parties). *)
type report = {
  offered : int;
  completed : int;
  no_route : int;
  success_rate : float;
  offered_rate : float;
  tps : float;
  sim_ms : float;
  total_hops : int;
  avg_path_len : float;
  fees_paid : int;
  depleted_final : int;
  samples : sample list;
  conserved : bool;
}

(** Drive [cfg] over graph [t], deterministic in [rng]. [clock]
    defaults to a fresh event queue; pass one to share sim-time with
    other machinery. Errors on degenerate configs (non-positive
    counts, rates or amounts, fewer than two nodes). *)
val run :
  ?clock:Monet_dsim.Clock.t ->
  Monet_hash.Drbg.t ->
  Graph.t ->
  config ->
  (report, string) result
