(** The MoNet channel graph, rebuilt for population scale.

    Nodes and edges live in growable arrays indexed by id, and every
    node keeps an adjacency index of incident edge ids, so [node] /
    [edge] are O(1) and [edges_of] is O(degree) — the seed's
    assoc-list representation scanned every node and every edge on
    each lookup and topped out at toy sizes.

    Two kinds of channel back an edge:

    - {b Real} — a full MoChannel with the complete cryptographic
      protocol stack behind it ({!open_channel}); used by the
      payment/chaos/dispute machinery.
    - {b Sim} — a balance-pair abstraction of a channel
      ({!open_sim_channel}); no wallets, no signatures. This is what
      lets {!Topo} build thousand-node networks and {!Workload} push
      hundreds of thousands of payments through them while measuring
      network-level throughput (ROADMAP item 1).

    Node cryptographic material (onion keypair, on-ledger wallet) is
    created lazily from a per-node DRBG split taken at {!add_node}, so
    population-scale graphs never pay for key generation while the
    real-channel API keeps working unchanged and deterministically. *)

module Ch = Monet_channel.Channel

(** Balance pair of a simulated (crypto-free) channel. *)
type sim_state = {
  mutable sim_left : int; (* spendable balance of [e_left] *)
  mutable sim_right : int; (* spendable balance of [e_right] *)
  mutable sim_closed : bool;
}

(** What backs an edge: a full MoChannel or a balance-only simulated
    channel. *)
type chan = Real of Ch.channel | Sim of sim_state

type node = {
  n_id : int;
  n_name : string;
  n_onion : Monet_sig.Sig_core.keypair Lazy.t;
  n_wallet : Monet_xmr.Wallet.t Lazy.t;
  mutable n_fee_base : int; (* flat fee charged for forwarding a payment *)
  mutable n_fee_ppm : int; (* proportional fee, parts-per-million of amount *)
  mutable n_adj : int array; (* incident edge ids; first n_deg are live *)
  mutable n_deg : int;
}

type edge = {
  e_id : int;
  e_channel : chan;
  e_left : int; (* node that plays channel-party A *)
  e_right : int; (* node that plays channel-party B *)
}

type t = {
  env : Ch.env;
  g : Monet_hash.Drbg.t;
  cfg : Ch.config;
  mutable node_arr : node array; (* first node_count are live; id = index *)
  mutable node_count : int;
  mutable edge_arr : edge array; (* first edge_count are live; id = index+1 *)
  mutable edge_count : int;
}

let create ?(cfg = Ch.default_config) (g : Monet_hash.Drbg.t) : t =
  {
    env = Ch.make_env (Monet_hash.Drbg.split g "env");
    g;
    cfg;
    node_arr = [||];
    node_count = 0;
    edge_arr = [||];
    edge_count = 0;
  }

let n_nodes (t : t) : int = t.node_count
let n_edges (t : t) : int = t.edge_count

(* Growable-array push: amortized O(1), doubling capacity, using the
   pushed element itself as filler so no dummy value is needed. *)
let push_node (t : t) (nd : node) : unit =
  if t.node_count = Array.length t.node_arr then begin
    let cap = max 8 (2 * t.node_count) in
    let bigger = Array.make cap nd in
    Array.blit t.node_arr 0 bigger 0 t.node_count;
    t.node_arr <- bigger
  end;
  t.node_arr.(t.node_count) <- nd;
  t.node_count <- t.node_count + 1

let push_edge (t : t) (e : edge) : unit =
  if t.edge_count = Array.length t.edge_arr then begin
    let cap = max 8 (2 * t.edge_count) in
    let bigger = Array.make cap e in
    Array.blit t.edge_arr 0 bigger 0 t.edge_count;
    t.edge_arr <- bigger
  end;
  t.edge_arr.(t.edge_count) <- e;
  t.edge_count <- t.edge_count + 1

let add_node (t : t) ~(name : string) : int =
  let gn = Monet_hash.Drbg.split t.g ("node/" ^ string_of_int t.node_count) in
  let g_onion = Monet_hash.Drbg.split gn "onion" in
  let g_wallet = Monet_hash.Drbg.split gn "wallet" in
  let ring_size = t.cfg.Ch.ring_size in
  let node =
    {
      n_id = t.node_count;
      n_name = name;
      n_onion = lazy (Monet_sig.Sig_core.gen g_onion);
      n_wallet = lazy (Monet_xmr.Wallet.create ~ring_size g_wallet ~label:name);
      n_fee_base = 0;
      n_fee_ppm = 0;
      n_adj = [||];
      n_deg = 0;
    }
  in
  push_node t node;
  node.n_id

let node (t : t) (id : int) : node =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Graph.node: no node %d" id)
  else t.node_arr.(id)

(** Force a node's onion keypair (AMHL packet delivery). *)
let onion_of (n : node) : Monet_sig.Sig_core.keypair = Lazy.force n.n_onion

(** Force a node's on-ledger wallet. *)
let wallet_of (n : node) : Monet_xmr.Wallet.t = Lazy.force n.n_wallet

(** Mint on-ledger funds for a node's wallet (genesis allocation). *)
let fund_node (t : t) (id : int) ~(amount : int) : unit =
  let n = node t id in
  let w = wallet_of n in
  let kp = Monet_sig.Sig_core.gen w.Monet_xmr.Wallet.g in
  Monet_xmr.Ledger.ensure_decoys t.g t.env.Ch.ledger ~amount ~n:(3 * t.cfg.Ch.ring_size);
  let idx =
    Monet_xmr.Ledger.genesis_output t.env.Ch.ledger
      { Monet_xmr.Tx.otk = kp.Monet_sig.Sig_core.vk; amount }
  in
  Monet_xmr.Wallet.adopt w ~global_index:idx ~keypair:kp ~amount

let add_adj (n : node) (eid : int) : unit =
  if n.n_deg = Array.length n.n_adj then begin
    let cap = max 4 (2 * n.n_deg) in
    let bigger = Array.make cap eid in
    Array.blit n.n_adj 0 bigger 0 n.n_deg;
    n.n_adj <- bigger
  end;
  n.n_adj.(n.n_deg) <- eid;
  n.n_deg <- n.n_deg + 1

let index_edge (t : t) (e : edge) : unit =
  push_edge t e;
  add_adj (node t e.e_left) e.e_id;
  add_adj (node t e.e_right) e.e_id

(** Open a MoChannel between two funded nodes. *)
let open_channel (t : t) ~(left : int) ~(right : int) ~(bal_left : int)
    ~(bal_right : int) : (int * Ch.report, string) result =
  let nl = node t left and nr = node t right in
  let id = t.edge_count + 1 in
  match
    Ch.establish ~cfg:t.cfg t.env ~id ~wallet_a:(wallet_of nl)
      ~wallet_b:(wallet_of nr) ~bal_a:bal_left ~bal_b:bal_right
  with
  | Error e -> Error (Ch.error_to_string e)
  | Ok (channel, rep) ->
      (* Reclaim funding change outputs mined during establishment. *)
      Monet_xmr.Wallet.scan (wallet_of nl) t.env.Ch.ledger;
      Monet_xmr.Wallet.scan (wallet_of nr) t.env.Ch.ledger;
      let e = { e_id = id; e_channel = Real channel; e_left = left; e_right = right } in
      index_edge t e;
      Ok (e.e_id, rep)

(** Open a simulated (balance-only) channel: no wallets, no crypto —
    the population-scale path used by {!Topo} and {!Workload}. *)
let open_sim_channel (t : t) ~(left : int) ~(right : int) ~(bal_left : int)
    ~(bal_right : int) : int =
  if left = right then invalid_arg "Graph.open_sim_channel: left = right";
  if bal_left < 0 || bal_right < 0 then
    invalid_arg "Graph.open_sim_channel: negative balance";
  ignore (node t left);
  ignore (node t right);
  let id = t.edge_count + 1 in
  let e =
    {
      e_id = id;
      e_channel = Sim { sim_left = bal_left; sim_right = bal_right; sim_closed = false };
      e_left = left;
      e_right = right;
    }
  in
  index_edge t e;
  id

let edge (t : t) (id : int) : edge =
  if id < 1 || id > t.edge_count then
    invalid_arg (Printf.sprintf "Graph.edge: no edge %d" id)
  else t.edge_arr.(id - 1)

(** The real MoChannel behind [e]; raises on simulated edges, which
    have no protocol stack to drive. *)
let channel_exn (e : edge) : Ch.channel =
  match e.e_channel with
  | Real c -> c
  | Sim _ -> invalid_arg (Printf.sprintf "Graph.channel_exn: edge %d is simulated" e.e_id)

(** The balance [node_id] holds in [e]. *)
let balance_of (e : edge) ~(node_id : int) : int =
  match e.e_channel with
  | Real c ->
      if e.e_left = node_id then c.Ch.a.Ch.my_balance
      else if e.e_right = node_id then c.Ch.b.Ch.my_balance
      else invalid_arg "Graph.balance_of: node not on edge"
  | Sim s ->
      if e.e_left = node_id then s.sim_left
      else if e.e_right = node_id then s.sim_right
      else invalid_arg "Graph.balance_of: node not on edge"

let peer_of (e : edge) ~(node_id : int) : int =
  if e.e_left = node_id then e.e_right
  else if e.e_right = node_id then e.e_left
  else invalid_arg "Graph.peer_of: node not on edge"

let is_open (e : edge) : bool =
  match e.e_channel with
  | Real c -> not c.Ch.a.Ch.closed
  | Sim s -> not s.sim_closed

(** Total capacity of the edge (both sides). *)
let capacity_of (e : edge) : int =
  match e.e_channel with
  | Real c -> c.Ch.a.Ch.capacity
  | Sim s -> s.sim_left + s.sim_right

(** Move [amount] across a simulated edge from [payer] to its peer.
    Raises on real edges (those settle through the channel protocol)
    and on insufficient balance — the router checks capacity first, so
    a miss here is a caller bug. *)
let sim_transfer (e : edge) ~(payer : int) ~(amount : int) : unit =
  match e.e_channel with
  | Real _ -> invalid_arg "Graph.sim_transfer: edge is a real channel"
  | Sim s ->
      if amount < 0 then invalid_arg "Graph.sim_transfer: negative amount";
      if s.sim_closed then invalid_arg "Graph.sim_transfer: channel closed";
      if e.e_left = payer then begin
        if s.sim_left < amount then invalid_arg "Graph.sim_transfer: insufficient";
        s.sim_left <- s.sim_left - amount;
        s.sim_right <- s.sim_right + amount
      end
      else if e.e_right = payer then begin
        if s.sim_right < amount then invalid_arg "Graph.sim_transfer: insufficient";
        s.sim_right <- s.sim_right - amount;
        s.sim_left <- s.sim_left + amount
      end
      else invalid_arg "Graph.sim_transfer: node not on edge"

(** Apply [f] to every incident edge id of [node_id] — the raw O(deg)
    adjacency walk (includes closed edges). *)
let iter_adj (t : t) (node_id : int) (f : edge -> unit) : unit =
  let n = node t node_id in
  for i = 0 to n.n_deg - 1 do
    f t.edge_arr.(n.n_adj.(i) - 1)
  done

let edges_of (t : t) (node_id : int) : edge list =
  let acc = ref [] in
  iter_adj t node_id (fun e -> if is_open e then acc := e :: !acc);
  List.rev !acc

(** Apply [f] to every edge, in id order. *)
let iter_edges (t : t) (f : edge -> unit) : unit =
  for i = 0 to t.edge_count - 1 do
    f t.edge_arr.(i)
  done

(** All edges as a list, in id order (allocates; prefer {!iter_edges}
    on large graphs). *)
let edge_list (t : t) : edge list =
  List.init t.edge_count (fun i -> t.edge_arr.(i))

(** Sum of every edge's spendable balances — constant under routing
    and sim transfers; the workload engine's conservation check. *)
let total_balance (t : t) : int =
  let sum = ref 0 in
  iter_edges t (fun e ->
      if is_open e then
        sum := !sum + balance_of e ~node_id:e.e_left + balance_of e ~node_id:e.e_right);
  !sum

(** Set a node's forwarding fee (flat, per payment). *)
let set_fee (t : t) (id : int) ~(fee : int) : unit = (node t id).n_fee_base <- fee

(** Set a node's full forwarding-fee policy: [base] flat plus [ppm]
    parts-per-million of the forwarded amount. *)
let set_fee_policy (t : t) (id : int) ~(base : int) ~(ppm : int) : unit =
  let n = node t id in
  n.n_fee_base <- base;
  n.n_fee_ppm <- ppm

(** The fee [id] charges for forwarding [amount]:
    [base + amount * ppm / 1_000_000]. *)
let fee_of (t : t) (id : int) ~(amount : int) : int =
  let n = node t id in
  n.n_fee_base + (amount * n.n_fee_ppm / 1_000_000)
