(** The MoNet channel graph: nodes (users) and the MoChannels between
    them. Nodes own wallets on the simulated Monero ledger and an onion
    key for AMHL setup delivery. *)

module Ch = Monet_channel.Channel

type node = {
  n_id : int;
  n_name : string;
  n_onion : Monet_sig.Sig_core.keypair;
  n_wallet : Monet_xmr.Wallet.t;
  mutable n_fee_base : int; (* flat fee charged for forwarding a payment *)
}

type edge = {
  e_id : int;
  e_channel : Ch.channel;
  e_left : int; (* node that plays channel-party A *)
  e_right : int; (* node that plays channel-party B *)
}

type t = {
  env : Ch.env;
  g : Monet_hash.Drbg.t;
  cfg : Ch.config;
  mutable nodes : node list; (* reverse order of creation *)
  mutable edges : edge list;
  mutable next_node : int;
  mutable next_edge : int;
}

let create ?(cfg = Ch.default_config) (g : Monet_hash.Drbg.t) : t =
  {
    env = Ch.make_env (Monet_hash.Drbg.split g "env");
    g;
    cfg;
    nodes = [];
    edges = [];
    next_node = 0;
    next_edge = 1;
  }

let add_node (t : t) ~(name : string) : int =
  let gn = Monet_hash.Drbg.split t.g ("node/" ^ string_of_int t.next_node) in
  let node =
    {
      n_id = t.next_node;
      n_name = name;
      n_onion = Monet_sig.Sig_core.gen gn;
      n_wallet = Monet_xmr.Wallet.create ~ring_size:t.cfg.ring_size gn ~label:name;
      n_fee_base = 0;
    }
  in
  t.nodes <- node :: t.nodes;
  t.next_node <- t.next_node + 1;
  node.n_id

let node (t : t) (id : int) : node =
  match List.find_opt (fun n -> n.n_id = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.node: no node %d" id)

(** Mint on-ledger funds for a node's wallet (genesis allocation). *)
let fund_node (t : t) (id : int) ~(amount : int) : unit =
  let n = node t id in
  let kp = Monet_sig.Sig_core.gen n.n_wallet.Monet_xmr.Wallet.g in
  Monet_xmr.Ledger.ensure_decoys t.g t.env.Ch.ledger ~amount ~n:(3 * t.cfg.ring_size);
  let idx =
    Monet_xmr.Ledger.genesis_output t.env.Ch.ledger
      { Monet_xmr.Tx.otk = kp.Monet_sig.Sig_core.vk; amount }
  in
  Monet_xmr.Wallet.adopt n.n_wallet ~global_index:idx ~keypair:kp ~amount

(** Open a MoChannel between two funded nodes. *)
let open_channel (t : t) ~(left : int) ~(right : int) ~(bal_left : int)
    ~(bal_right : int) : (int * Ch.report, string) result =
  let nl = node t left and nr = node t right in
  match
    Ch.establish ~cfg:t.cfg t.env ~id:t.next_edge ~wallet_a:nl.n_wallet
      ~wallet_b:nr.n_wallet ~bal_a:bal_left ~bal_b:bal_right
  with
  | Error e -> Error (Ch.error_to_string e)
  | Ok (channel, rep) ->
      (* Reclaim funding change outputs mined during establishment. *)
      Monet_xmr.Wallet.scan nl.n_wallet t.env.Ch.ledger;
      Monet_xmr.Wallet.scan nr.n_wallet t.env.Ch.ledger;
      let e =
        { e_id = t.next_edge; e_channel = channel; e_left = left; e_right = right }
      in
      t.edges <- e :: t.edges;
      t.next_edge <- t.next_edge + 1;
      Ok (e.e_id, rep)

let edge (t : t) (id : int) : edge =
  match List.find_opt (fun e -> e.e_id = id) t.edges with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Graph.edge: no edge %d" id)

(** The balance [node_id] holds in [e]. *)
let balance_of (e : edge) ~(node_id : int) : int =
  if e.e_left = node_id then e.e_channel.Ch.a.Ch.my_balance
  else if e.e_right = node_id then e.e_channel.Ch.b.Ch.my_balance
  else invalid_arg "Graph.balance_of: node not on edge"

let peer_of (e : edge) ~(node_id : int) : int =
  if e.e_left = node_id then e.e_right
  else if e.e_right = node_id then e.e_left
  else invalid_arg "Graph.peer_of: node not on edge"

let is_open (e : edge) : bool = not e.e_channel.Ch.a.Ch.closed

let edges_of (t : t) (node_id : int) : edge list =
  List.filter (fun e -> (e.e_left = node_id || e.e_right = node_id) && is_open e) t.edges

(** Set a node's forwarding fee (flat, per payment). *)
let set_fee (t : t) (id : int) ~(fee : int) : unit = (node t id).n_fee_base <- fee
