(** Pathfinding over the channel graph: capacity- and fee-aware
    Dijkstra run {e backwards} from the destination, so every
    relaxation knows the exact amount (payment plus downstream fees)
    the candidate payer must be able to forward. Route cost is total
    intermediary fees plus a per-hop penalty; ties break
    deterministically on (cost, hops, edge id), so the same graph
    always yields the same route under any transport. *)

(** One step of a route: the edge to cross and which endpoint pays. *)
type hop = { h_edge : Graph.edge; h_payer : int }

(** Sets of edge ids, used to exclude edges from a search. *)
module Edge_set : Set.S with type elt = int

(** Reusable Dijkstra workspace: generation-stamped per-node arrays
    plus a binary heap, so repeated routing on a large graph costs
    O(touched) per call instead of O(V) re-initialization. *)
type state

(** A fresh workspace sized for [t] (grows automatically if the graph
    does). *)
val make_state : Graph.t -> state

(** [find_path t ~src ~dst ~amount] is the cheapest feasible route for
    a payment of [amount] received by [dst], or [Error] if none
    exists. Feasible means every hop's payer can spend the amount that
    hop carries (payment plus all downstream fees). [avoid] excludes
    edges by id; [hop_cost] (default 1) is the per-hop penalty added
    to fees in the cost objective; [state] reuses a workspace from
    {!make_state}. *)
val find_path :
  ?state:state ->
  ?avoid:Edge_set.t ->
  ?hop_cost:int ->
  Graph.t ->
  src:int ->
  dst:int ->
  amount:int ->
  (hop list, string) result

(** {!find_path} with the avoid set given as a list of edge ids — the
    shape multi-path routing accumulates. *)
val find_path_avoiding :
  ?state:state ->
  Graph.t ->
  src:int ->
  dst:int ->
  amount:int ->
  avoid:int list ->
  (hop list, string) result

(** Per-hop amounts along a route when every intermediary charges its
    fee policy: the last hop carries [amount]; each earlier hop adds
    the downstream intermediary's fee. Same length and order as the
    route. *)
val amounts : Graph.t -> amount:int -> hop list -> int list

(** The routing cost of a path — total intermediary fees plus
    [hop_cost] per hop; the objective {!find_path} minimizes. *)
val cost : Graph.t -> ?hop_cost:int -> amount:int -> hop list -> int

(** Total fees the sender pays on top of [amount] along the path. *)
val fees : Graph.t -> amount:int -> hop list -> int
