(** Pathfinding over the channel graph: shortest path (fewest hops)
    with per-hop spendable-capacity constraints, BFS with lexicographic
    tie-breaking so routing is deterministic. *)

(** One hop of a route: the edge it crosses and which node pays on
    it. *)
type hop = { h_edge : Graph.edge; h_payer : int }

(** A path src→dst where every hop can forward [amount]. *)
val find_path :
  Graph.t -> src:int -> dst:int -> amount:int -> (hop list, string) result

(** Like {!find_path} but never using the edges in [avoid] — used by
    multi-path payments to find capacity-disjoint routes. *)
val find_path_avoiding :
  Graph.t ->
  src:int ->
  dst:int ->
  amount:int ->
  avoid:int list ->
  (hop list, string) result
