(** Open-arrival payment workload over a channel graph, driven by the
    discrete-event clock — the engine behind the measured network-TPS
    numbers in BENCH_net.json (DESIGN.md §3.9).

    Payments arrive as a Poisson process at [arrival_rate] per
    sim-second, each between a uniformly random (src, dst) pair with a
    uniformly random amount. Each arrival is routed with the
    fee-aware Dijkstra ({!Router.find_path}, shared workspace), its
    per-hop fee-adjusted amounts are settled through
    {!Graph.sim_transfer}, and its completion is scheduled through a
    per-node queueing model: every payer (sender and intermediaries)
    serves hops one at a time, [hop_proc_ms] each, so busy hubs build
    queues and throughput saturates instead of scaling linearly with
    offered load. Network TPS is therefore {e measured} on the
    simulated clock — completions over the sim-time span — not
    extrapolated from a single channel.

    Liquidity depletion is sampled over sim-time: an edge counts as
    depleted once its poorer side can no longer carry even a
    minimum-amount payment. Wealth conservation ([Graph.total_balance]
    before = after) is checked on every run and reported. *)

module Drbg = Monet_hash.Drbg
module Clock = Monet_dsim.Clock

type config = {
  n_payments : int; (* arrivals to generate *)
  arrival_rate : float; (* payments per sim-second, network-wide *)
  amount_min : int;
  amount_max : int;
  hop_proc_ms : float; (* per-hop service time at the paying node *)
  sample_every_ms : float; (* liquidity-depletion sampling period *)
}

let default_config =
  {
    n_payments = 1_000;
    arrival_rate = 100.0;
    amount_min = 10;
    amount_max = 1_000;
    hop_proc_ms = 20.0;
    sample_every_ms = 1_000.0;
  }

type sample = {
  s_time_ms : float;
  s_depleted : int; (* edges whose poorer side < amount_min *)
  s_completed : int; (* payments completed by this time *)
  s_no_route : int; (* routing failures by this time *)
}

type report = {
  offered : int;
  completed : int;
  no_route : int;
  success_rate : float; (* completed / offered *)
  offered_rate : float; (* configured arrivals per sim-second *)
  tps : float; (* completed / sim-time span — the measured number *)
  sim_ms : float; (* sim-time of the last completion *)
  total_hops : int;
  avg_path_len : float; (* hops per completed payment *)
  fees_paid : int; (* total intermediary earnings *)
  depleted_final : int;
  samples : sample list; (* depletion over sim-time, oldest first *)
  conserved : bool; (* total_balance before = after *)
}

let m_arrivals = Monet_obs.Metrics.counter "net.workload.arrival"
let m_completed = Monet_obs.Metrics.counter "net.workload.completed"
let m_no_route = Monet_obs.Metrics.counter "net.workload.no_route"

let depleted_edges (t : Graph.t) ~(amount_min : int) : int =
  let n = ref 0 in
  Graph.iter_edges t (fun e ->
      if Graph.is_open e then begin
        let lo =
          min
            (Graph.balance_of e ~node_id:e.Graph.e_left)
            (Graph.balance_of e ~node_id:e.Graph.e_right)
        in
        if lo < amount_min then incr n
      end);
  !n

(** Exponential inter-arrival gap for a Poisson process at [rate]/s,
    in sim-ms. The DRBG float is in [0, 1); guard the log. *)
let exp_gap_ms (rng : Drbg.t) ~(rate : float) : float =
  let u = Drbg.float rng in
  let u = if u <= 0.0 then 1e-12 else u in
  -.log u /. rate *. 1000.0

let run ?(clock = Clock.create ()) (rng : Drbg.t) (t : Graph.t) (cfg : config) :
    (report, string) result =
  if cfg.n_payments <= 0 then Error "n_payments must be positive"
  else if cfg.arrival_rate <= 0.0 then Error "arrival_rate must be positive"
  else if cfg.amount_min <= 0 || cfg.amount_max < cfg.amount_min then
    Error "need 0 < amount_min <= amount_max"
  else if Graph.n_nodes t < 2 then Error "need at least two nodes"
  else
    Monet_obs.Trace.span "workload.run"
      ~attrs:
        [ ("payments", string_of_int cfg.n_payments);
          ("nodes", string_of_int (Graph.n_nodes t)) ]
    @@ fun () ->
    let wealth0 = Graph.total_balance t in
    let n_nodes = Graph.n_nodes t in
    let state = Router.make_state t in
    let busy = Array.make n_nodes 0.0 in
    let offered = ref 0 in
    let completed = ref 0 in
    let no_route = ref 0 in
    let total_hops = ref 0 in
    let fees_paid = ref 0 in
    let last_completion = ref 0.0 in
    let samples = ref [] in
    (* Periodic liquidity sampling, rescheduling itself until every
       payment resolved, so the depletion curve spans the whole run
       including the backlog drain after arrivals stop. *)
    let rec sampler () =
      samples :=
        {
          s_time_ms = Clock.now clock;
          s_depleted = depleted_edges t ~amount_min:cfg.amount_min;
          s_completed = !completed;
          s_no_route = !no_route;
        }
        :: !samples;
      if !completed + !no_route < cfg.n_payments then
        Clock.schedule clock ~delay:cfg.sample_every_ms sampler
    in
    let span_amount = cfg.amount_max - cfg.amount_min + 1 in
    let one_arrival () =
      Monet_obs.Metrics.bump m_arrivals;
      incr offered;
      let src = Drbg.int rng n_nodes in
      let dst =
        let d = Drbg.int rng (n_nodes - 1) in
        if d >= src then d + 1 else d
      in
      let amount = cfg.amount_min + Drbg.int rng span_amount in
      match Router.find_path ~state t ~src ~dst ~amount with
      | Error _ ->
          Monet_obs.Metrics.bump m_no_route;
          incr no_route
      | Ok path ->
          (* Settle liquidity now (the route was feasible against the
             current balances and nothing runs between route and
             settle), then push the hops through the per-node queues
             to find when the payment completes. *)
          let amts = Router.amounts t ~amount path in
          List.iter2
            (fun (h : Router.hop) amt ->
              Graph.sim_transfer h.Router.h_edge ~payer:h.Router.h_payer ~amount:amt)
            path amts;
          (match amts with
          | first :: _ -> fees_paid := !fees_paid + (first - amount)
          | [] -> ());
          total_hops := !total_hops + List.length path;
          let finish = ref (Clock.now clock) in
          List.iter
            (fun (h : Router.hop) ->
              let p = h.Router.h_payer in
              let start = Float.max !finish busy.(p) in
              finish := start +. cfg.hop_proc_ms;
              busy.(p) <- !finish)
            path;
          Clock.schedule clock
            ~delay:(!finish -. Clock.now clock)
            (fun () ->
              Monet_obs.Metrics.bump m_completed;
              incr completed;
              last_completion := Clock.now clock)
    in
    (* Chain arrivals so the event heap stays small: each arrival
       schedules the next at an exponential gap. *)
    let remaining = ref cfg.n_payments in
    let rec arrival () =
      one_arrival ();
      decr remaining;
      if !remaining > 0 then
        Clock.schedule clock ~delay:(exp_gap_ms rng ~rate:cfg.arrival_rate) arrival
    in
    Clock.schedule clock ~delay:(exp_gap_ms rng ~rate:cfg.arrival_rate) arrival;
    Clock.schedule clock ~delay:cfg.sample_every_ms sampler;
    Clock.run clock ();
    sampler ();
    let sim_ms = Float.max !last_completion (Clock.now clock) in
    let completed_f = float_of_int !completed in
    Ok
      {
        offered = !offered;
        completed = !completed;
        no_route = !no_route;
        success_rate =
          (if !offered = 0 then 0.0 else completed_f /. float_of_int !offered);
        offered_rate = cfg.arrival_rate;
        tps = (if sim_ms <= 0.0 then 0.0 else completed_f /. (sim_ms /. 1000.0));
        sim_ms;
        total_hops = !total_hops;
        avg_path_len =
          (if !completed = 0 then 0.0 else float_of_int !total_hops /. completed_f);
        fees_paid = !fees_paid;
        depleted_final = depleted_edges t ~amount_min:cfg.amount_min;
        samples = List.rev !samples;
        conserved = Graph.total_balance t = wealth0;
      }
