(** The MoNet channel graph: nodes (users) and the MoChannels between
    them. Nodes own wallets on the simulated Monero ledger and an onion
    key for AMHL setup delivery. *)

(** A network participant: identity, onion keypair (AMHL packet
    delivery), an on-ledger wallet and its flat forwarding fee. *)
type node = {
  n_id : int;
  n_name : string;
  n_onion : Monet_sig.Sig_core.keypair;
  n_wallet : Monet_xmr.Wallet.t;
  mutable n_fee_base : int;
}

(** A channel in the graph. [e_left] plays channel-party A, [e_right]
    plays B. *)
type edge = {
  e_id : int;
  e_channel : Monet_channel.Channel.channel;
  e_left : int;
  e_right : int;
}

(** The graph: a shared channel environment (ledger, script chain,
    escrowers) plus the node and edge sets. *)
type t = {
  env : Monet_channel.Channel.env;
  g : Monet_hash.Drbg.t;
  cfg : Monet_channel.Channel.config;
  mutable nodes : node list;
  mutable edges : edge list;
  mutable next_node : int;
  mutable next_edge : int;
}

(** An empty graph over a fresh simulated ledger/script environment. *)
val create : ?cfg:Monet_channel.Channel.config -> Monet_hash.Drbg.t -> t

(** Add a node and return its id. *)
val add_node : t -> name:string -> int

(** Look up a node by id. Raises [Invalid_argument] on unknown ids —
    node ids come from {!add_node}, so a miss is a caller bug. *)
val node : t -> int -> node

(** Mint on-ledger funds for a node's wallet (genesis allocation). *)
val fund_node : t -> int -> amount:int -> unit

(** Open a MoChannel between two funded nodes; returns the new edge id
    and the establishment report. *)
val open_channel :
  t ->
  left:int ->
  right:int ->
  bal_left:int ->
  bal_right:int ->
  (int * Monet_channel.Channel.report, string) result

(** Look up an edge by id. Raises [Invalid_argument] on unknown ids. *)
val edge : t -> int -> edge

(** The balance [node_id] holds in [e]. Raises [Invalid_argument] if
    the node is not an endpoint of the edge. *)
val balance_of : edge -> node_id:int -> int

(** The other endpoint of [e]. Raises [Invalid_argument] if the node
    is not an endpoint of the edge. *)
val peer_of : edge -> node_id:int -> int

(** Whether the edge's channel is still open. *)
val is_open : edge -> bool

(** All open edges incident to [node_id]. *)
val edges_of : t -> int -> edge list

(** Set a node's forwarding fee (flat, per payment). *)
val set_fee : t -> int -> fee:int -> unit
