(** The MoNet channel graph, rebuilt for population scale: nodes and
    edges in growable arrays with per-node adjacency indexes (O(1)
    lookup, O(degree) neighborhood), lazily materialized node crypto,
    and two channel backings — full MoChannels for the protocol
    machinery and balance-only simulated channels for thousand-node
    throughput measurement (DESIGN.md §3.9). *)

(** Balance pair of a simulated (crypto-free) channel. *)
type sim_state = {
  mutable sim_left : int;
  mutable sim_right : int;
  mutable sim_closed : bool;
}

(** What backs an edge: a full MoChannel ({!open_channel}) or a
    balance-only simulated channel ({!open_sim_channel}). *)
type chan = Real of Monet_channel.Channel.channel | Sim of sim_state

(** A network participant. Onion keypair (AMHL packet delivery) and
    on-ledger wallet are lazy: population-scale graphs never force
    them. [n_adj]/[n_deg] are the adjacency index (incident edge ids);
    treat them as internal and use {!edges_of} / {!iter_adj}. *)
type node = {
  n_id : int;
  n_name : string;
  n_onion : Monet_sig.Sig_core.keypair Lazy.t;
  n_wallet : Monet_xmr.Wallet.t Lazy.t;
  mutable n_fee_base : int;
  mutable n_fee_ppm : int;
  mutable n_adj : int array;
  mutable n_deg : int;
}

(** A channel in the graph. [e_left] plays channel-party A, [e_right]
    plays B. *)
type edge = { e_id : int; e_channel : chan; e_left : int; e_right : int }

(** The graph: a shared channel environment (ledger, script chain,
    escrowers) plus the node and edge stores. [node_arr]/[edge_arr]
    are internal growable arrays — use the accessors. *)
type t = {
  env : Monet_channel.Channel.env;
  g : Monet_hash.Drbg.t;
  cfg : Monet_channel.Channel.config;
  mutable node_arr : node array;
  mutable node_count : int;
  mutable edge_arr : edge array;
  mutable edge_count : int;
}

(** An empty graph over a fresh simulated ledger/script environment. *)
val create : ?cfg:Monet_channel.Channel.config -> Monet_hash.Drbg.t -> t

(** Number of nodes. *)
val n_nodes : t -> int

(** Number of edges (open or closed). *)
val n_edges : t -> int

(** Add a node and return its id. O(1) amortized; no key generation
    happens until the node's wallet or onion key is actually used. *)
val add_node : t -> name:string -> int

(** Look up a node by id, O(1). Raises [Invalid_argument] on unknown
    ids — node ids come from {!add_node}, so a miss is a caller bug. *)
val node : t -> int -> node

(** Force a node's onion keypair (AMHL packet delivery). *)
val onion_of : node -> Monet_sig.Sig_core.keypair

(** Force a node's on-ledger wallet. *)
val wallet_of : node -> Monet_xmr.Wallet.t

(** Mint on-ledger funds for a node's wallet (genesis allocation). *)
val fund_node : t -> int -> amount:int -> unit

(** Open a MoChannel between two funded nodes; returns the new edge id
    and the establishment report. *)
val open_channel :
  t ->
  left:int ->
  right:int ->
  bal_left:int ->
  bal_right:int ->
  (int * Monet_channel.Channel.report, string) result

(** Open a simulated (balance-only) channel — no wallets, no crypto —
    and return its edge id. The population-scale path used by {!Topo}
    and {!Workload}. Raises [Invalid_argument] on self-loops or
    negative balances. *)
val open_sim_channel :
  t -> left:int -> right:int -> bal_left:int -> bal_right:int -> int

(** Look up an edge by id, O(1). Raises [Invalid_argument] on unknown
    ids. *)
val edge : t -> int -> edge

(** The real MoChannel behind an edge. Raises [Invalid_argument] on
    simulated edges, which have no protocol stack to drive. *)
val channel_exn : edge -> Monet_channel.Channel.channel

(** The balance [node_id] holds in [e]. Raises [Invalid_argument] if
    the node is not an endpoint of the edge. *)
val balance_of : edge -> node_id:int -> int

(** The other endpoint of [e]. Raises [Invalid_argument] if the node
    is not an endpoint of the edge. *)
val peer_of : edge -> node_id:int -> int

(** Whether the edge's channel is still open. *)
val is_open : edge -> bool

(** Total capacity of the edge (both sides together). *)
val capacity_of : edge -> int

(** Move [amount] across a simulated edge from [payer] to its peer.
    Raises [Invalid_argument] on real edges, closed channels and
    insufficient balance — callers route first, so a miss is a bug. *)
val sim_transfer : edge -> payer:int -> amount:int -> unit

(** Apply a function to every incident edge of a node — the raw
    O(degree) adjacency walk (includes closed edges). *)
val iter_adj : t -> int -> (edge -> unit) -> unit

(** All open edges incident to [node_id], in insertion order. *)
val edges_of : t -> int -> edge list

(** Apply a function to every edge, in id order. *)
val iter_edges : t -> (edge -> unit) -> unit

(** All edges as a list, in id order (allocates; prefer {!iter_edges}
    on large graphs). *)
val edge_list : t -> edge list

(** Sum of every open edge's spendable balances — invariant under
    routing and sim transfers (the conservation check used by the
    workload engine and its tests). *)
val total_balance : t -> int

(** Set a node's forwarding fee (flat, per payment). *)
val set_fee : t -> int -> fee:int -> unit

(** Set a node's full forwarding-fee policy: [base] flat plus [ppm]
    parts-per-million of the forwarded amount. *)
val set_fee_policy : t -> int -> base:int -> ppm:int -> unit

(** The fee [id] charges for forwarding [amount]:
    [base + amount * ppm / 1_000_000]. *)
val fee_of : t -> int -> amount:int -> int
