(** Pathfinding over the channel graph: capacity- and fee-aware
    Dijkstra.

    The seed router was a fewest-hops BFS that ignored forwarding fees
    and re-scanned the whole edge list per node. This one searches
    {e backwards} from the destination, accumulating at every node the
    amount that must arrive there (payment amount plus the fees of all
    intermediaries downstream, exactly {!amounts}'s accounting), so
    each relaxation can check the payer's spendable balance against
    the true forwarded amount. The cost of a route is the total fee
    paid plus a per-hop penalty ([hop_cost], default 1 coin unit), so
    with zero fees Dijkstra degenerates to fewest-hops. Ties break
    deterministically: lower cost, then fewer hops, then smaller edge
    id — same graph and seed always yield the same route, under any
    transport.

    One implementation serves both the plain and the edge-avoiding
    search ({!find_path_avoiding} used to be a 35-line near-duplicate);
    avoidance is an {!Edge_set} with O(log n) membership instead of
    the seed's O(|avoid|) [List.mem].

    A {!state} workspace (generation-stamped arrays plus a binary
    heap) can be reused across calls so population-scale workloads pay
    O(touched) per route instead of O(V) re-initialization. *)

type hop = { h_edge : Graph.edge; h_payer : int (* node paying on this edge *) }

module Edge_set = Set.Make (Int)

(* Generation-stamped Dijkstra workspace: [stamp.(v) = gen] marks a
   node as touched this run, so reuse across calls costs O(touched)
   instead of O(V). The heap is a straightforward binary min-heap in
   parallel int arrays with lazy deletion (stale entries are skipped
   at pop when the node is already settled). *)
type state = {
  mutable gen : int;
  mutable stamp : int array;
  mutable settled : int array; (* generation-stamped settled marker *)
  mutable cost : int array;
  mutable hops : int array;
  mutable amt : int array; (* amount that must arrive at the node *)
  mutable pred_edge : int array; (* edge toward dst; 0 = none *)
  mutable pred_node : int array; (* next node toward dst *)
  mutable h_cost : int array;
  mutable h_hops : int array;
  mutable h_node : int array;
  mutable h_size : int;
}

let make_state (t : Graph.t) : state =
  let n = max 1 (Graph.n_nodes t) in
  {
    gen = 0;
    stamp = Array.make n 0;
    settled = Array.make n 0;
    cost = Array.make n 0;
    hops = Array.make n 0;
    amt = Array.make n 0;
    pred_edge = Array.make n 0;
    pred_node = Array.make n 0;
    h_cost = Array.make 64 0;
    h_hops = Array.make 64 0;
    h_node = Array.make 64 0;
    h_size = 0;
  }

let ensure_capacity (s : state) (n : int) : unit =
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.settled <- Array.make n 0;
    s.cost <- Array.make n 0;
    s.hops <- Array.make n 0;
    s.amt <- Array.make n 0;
    s.pred_edge <- Array.make n 0;
    s.pred_node <- Array.make n 0;
    s.gen <- 0
  end

(* Heap ordering: (cost, hops, node id) lexicographic — the
   deterministic tie-break. *)
let heap_before (s : state) i j =
  s.h_cost.(i) < s.h_cost.(j)
  || (s.h_cost.(i) = s.h_cost.(j)
      && (s.h_hops.(i) < s.h_hops.(j)
          || (s.h_hops.(i) = s.h_hops.(j) && s.h_node.(i) < s.h_node.(j))))

let heap_swap (s : state) i j =
  let c = s.h_cost.(i) and h = s.h_hops.(i) and n = s.h_node.(i) in
  s.h_cost.(i) <- s.h_cost.(j);
  s.h_hops.(i) <- s.h_hops.(j);
  s.h_node.(i) <- s.h_node.(j);
  s.h_cost.(j) <- c;
  s.h_hops.(j) <- h;
  s.h_node.(j) <- n

let heap_push (s : state) ~cost ~hops ~node =
  if s.h_size = Array.length s.h_cost then begin
    let cap = 2 * s.h_size in
    let grow a = Array.append a (Array.make s.h_size 0) in
    ignore cap;
    s.h_cost <- grow s.h_cost;
    s.h_hops <- grow s.h_hops;
    s.h_node <- grow s.h_node
  end;
  let i = ref s.h_size in
  s.h_size <- s.h_size + 1;
  s.h_cost.(!i) <- cost;
  s.h_hops.(!i) <- hops;
  s.h_node.(!i) <- node;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_before s !i parent then begin
      heap_swap s !i parent;
      i := parent
    end
    else continue := false
  done

let heap_pop (s : state) : int option =
  if s.h_size = 0 then None
  else begin
    let top = s.h_node.(0) in
    s.h_size <- s.h_size - 1;
    if s.h_size > 0 then begin
      s.h_cost.(0) <- s.h_cost.(s.h_size);
      s.h_hops.(0) <- s.h_hops.(s.h_size);
      s.h_node.(0) <- s.h_node.(s.h_size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < s.h_size && heap_before s l !smallest then smallest := l;
        if r < s.h_size && heap_before s r !smallest then smallest := r;
        if !smallest <> !i then begin
          heap_swap s !smallest !i;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

let m_routes = Monet_obs.Metrics.counter "net.route"
let m_no_route = Monet_obs.Metrics.counter "net.route.no_route"
let m_settled = Monet_obs.Metrics.counter "net.route.settled"
let m_relaxed = Monet_obs.Metrics.counter "net.route.relaxed"

(** A cheapest feasible path src→dst for a payment of [amount]
    (received by [dst]; fees ride on top), never crossing an edge in
    [avoid]. [state] is an optional reusable workspace
    ({!make_state}); without it a fresh one is allocated per call. *)
let find_path ?state ?(avoid = Edge_set.empty) ?(hop_cost = 1) (t : Graph.t)
    ~(src : int) ~(dst : int) ~(amount : int) : (hop list, string) result =
  if src = dst then Error "source equals destination"
  else if src < 0 || src >= Graph.n_nodes t || dst < 0 || dst >= Graph.n_nodes t
  then Error "unknown endpoint"
  else if amount <= 0 then Error "amount must be positive"
  else begin
    Monet_obs.Metrics.bump m_routes;
    let s = match state with Some s -> s | None -> make_state t in
    ensure_capacity s (Graph.n_nodes t);
    s.gen <- s.gen + 1;
    s.h_size <- 0;
    let gen = s.gen in
    let touch v =
      if s.stamp.(v) <> gen then begin
        s.stamp.(v) <- gen;
        s.cost.(v) <- max_int;
        s.hops.(v) <- max_int;
        s.amt.(v) <- 0;
        s.pred_edge.(v) <- 0;
        s.pred_node.(v) <- 0
      end
    in
    (* Reverse search: seed at the destination, which must receive
       [amount]; settle nodes outward until the source is reached. *)
    touch dst;
    s.cost.(dst) <- 0;
    s.hops.(dst) <- 0;
    s.amt.(dst) <- amount;
    heap_push s ~cost:0 ~hops:0 ~node:dst;
    let found = ref false in
    let continue = ref true in
    while !continue do
      match heap_pop s with
      | None -> continue := false
      | Some v ->
          if s.settled.(v) <> gen then begin
            s.settled.(v) <- gen;
            Monet_obs.Metrics.bump m_settled;
            if v = src then begin
              found := true;
              continue := false
            end
            else
              Graph.iter_adj t v (fun e ->
                  let u = Graph.peer_of e ~node_id:v in
                  if
                    s.settled.(u) <> gen
                    && Graph.is_open e
                    && (Edge_set.is_empty avoid
                       || not (Edge_set.mem e.Graph.e_id avoid))
                    && Graph.balance_of e ~node_id:u >= s.amt.(v)
                  then begin
                    Monet_obs.Metrics.bump m_relaxed;
                    (* [u] pays amt(v) on this edge; unless [u] is the
                       sender it also charges its forwarding fee, which
                       the hop upstream of it must carry. *)
                    let fee =
                      if u = src then 0 else Graph.fee_of t u ~amount:s.amt.(v)
                    in
                    let cost' = s.cost.(v) + hop_cost + fee in
                    let hops' = s.hops.(v) + 1 in
                    touch u;
                    let better =
                      cost' < s.cost.(u)
                      || (cost' = s.cost.(u)
                          && (hops' < s.hops.(u)
                              || (hops' = s.hops.(u)
                                  && e.Graph.e_id < s.pred_edge.(u))))
                    in
                    if better then begin
                      s.cost.(u) <- cost';
                      s.hops.(u) <- hops';
                      s.amt.(u) <- s.amt.(v) + fee;
                      s.pred_edge.(u) <- e.Graph.e_id;
                      s.pred_node.(u) <- v;
                      heap_push s ~cost:cost' ~hops:hops' ~node:u
                    end
                  end)
          end
    done;
    if not !found then begin
      Monet_obs.Metrics.bump m_no_route;
      Error "no route with sufficient capacity"
    end
    else begin
      (* Walk the predecessor chain forward from the source. *)
      let rec build v acc =
        if v = dst then List.rev acc
        else
          let e = Graph.edge t s.pred_edge.(v) in
          build s.pred_node.(v) ({ h_edge = e; h_payer = v } :: acc)
      in
      Ok (build src [])
    end
  end

(** Like {!find_path} but never using the edges in [avoid] — used by
    multi-path payments to find capacity-disjoint routes. *)
let find_path_avoiding ?state (t : Graph.t) ~(src : int) ~(dst : int)
    ~(amount : int) ~(avoid : int list) : (hop list, string) result =
  find_path ?state ~avoid:(Edge_set.of_list avoid) t ~src ~dst ~amount

(** Per-hop amounts along [path] when intermediaries charge their fee
    policy: the receiver nets [amount]; hop i additionally carries the
    fees of every intermediary downstream of it, each of whom keeps
    its fee as the difference between what it receives and what it
    forwards. *)
let amounts (t : Graph.t) ~(amount : int) (path : hop list) : int list =
  let hops = Array.of_list path in
  let n = Array.length hops in
  let amts = Array.make (max n 1) amount in
  (* walk right to left; the intermediary between hop i and i+1 is the
     payer of hop i+1 *)
  for i = n - 2 downto 0 do
    let intermediary = hops.(i + 1).h_payer in
    amts.(i) <- amts.(i + 1) + Graph.fee_of t intermediary ~amount:amts.(i + 1)
  done;
  if n = 0 then [] else Array.to_list (Array.sub amts 0 n)

(** The routing cost of [path]: total intermediary fees plus
    [hop_cost] per hop — the objective {!find_path} minimizes. *)
let cost (t : Graph.t) ?(hop_cost = 1) ~(amount : int) (path : hop list) : int =
  match amounts t ~amount path with
  | [] -> 0
  | first :: _ -> first - amount + (hop_cost * List.length path)

(** Total fees the sender pays on top of [amount] along [path]. *)
let fees (t : Graph.t) ~(amount : int) (path : hop list) : int =
  match amounts t ~amount path with [] -> 0 | first :: _ -> first - amount
