(** Layered (onion) encryption for AMHL setup messages.

    MoNet delivers each hop's packet through an anonymous channel so
    intermediaries learn only their direct neighbours (sender/receiver
    and path privacy, paper §IV-C citing Camenisch–Lysyanskaya onion
    routing). This is a compact hashed-ElGamal onion: each layer is
    encrypted to one relay's public key and reveals that relay's
    payload plus the next-layer ciphertext. *)

open Monet_ec

type layer_plain = { payload : string; next : string (* inner ciphertext, "" at exit *) }

let kdf (shared : Point.t) (n : int) : string =
  let block i =
    Monet_hash.Hash.tagged "onion-kdf" [ Point.encode shared; string_of_int i ]
  in
  let buf = Buffer.create n in
  let i = ref 0 in
  while Buffer.length buf < n do
    Buffer.add_string buf (block !i);
    incr i
  done;
  String.sub (Buffer.contents buf) 0 n

let encrypt_layer (g : Monet_hash.Drbg.t) ~(pk : Point.t) (plain : layer_plain) : string =
  let w = Monet_util.Wire.create_writer () in
  Monet_util.Wire.write_bytes w plain.payload;
  Monet_util.Wire.write_bytes w plain.next;
  let body = Monet_util.Wire.contents w in
  let r = Sc.random_nonzero g in
  let eph = Point.mul_base r in
  let pad = kdf (Point.mul r pk) (String.length body) in
  let mac =
    Monet_hash.Hash.tagged "onion-mac" [ Point.encode eph; Monet_util.Bytes_ext.xor body pad ]
  in
  let out = Monet_util.Wire.create_writer () in
  Monet_util.Wire.write_fixed out (Point.encode eph);
  Monet_util.Wire.write_fixed out (String.sub mac 0 16);
  Monet_util.Wire.write_bytes out (Monet_util.Bytes_ext.xor body pad);
  Monet_util.Wire.contents out

let decrypt_layer ~(sk : Sc.t) (cipher : string) : (layer_plain, string) result =
  try
    let r = Monet_util.Wire.reader_of_string cipher in
    let eph = Point.decode_exn (Monet_util.Wire.read_fixed r 32) in
    let mac = Monet_util.Wire.read_fixed r 16 in
    let body_enc = Monet_util.Wire.read_bytes r in
    let expect =
      Monet_hash.Hash.tagged "onion-mac" [ Point.encode eph; body_enc ]
    in
    if not (Monet_util.Bytes_ext.ct_equal mac (String.sub expect 0 16)) then
      Error "onion: bad mac"
    else begin
      let pad = kdf (Point.mul sk eph) (String.length body_enc) in
      let body = Monet_util.Bytes_ext.xor body_enc pad in
      let br = Monet_util.Wire.reader_of_string body in
      let payload = Monet_util.Wire.read_bytes br in
      let next = Monet_util.Wire.read_bytes br in
      Ok { payload; next }
    end
  with _ -> Error "onion: malformed"

(** Wrap per-relay payloads (ordered sender→receiver) into one onion
    for the first relay.

    With [pad_to] set the delivered onion is padded with random bytes
    to exactly [pad_to] bytes; relays re-pad after peeling (see
    {!peel}), so every onion on the wire has the same size and a
    passive observer — or the next relay — cannot infer path position
    from sizes. (A relay can still measure its own decrypted body; a
    Sphinx-style constant-size header would close that residual leak
    and is noted as future work.) Decryption ignores padding because
    every field inside a layer is length-prefixed. *)
let wrap ?(pad_to = 0) (g : Monet_hash.Drbg.t) (route : (Point.t * string) list) :
    string =
  let onion =
    match List.rev route with
    | [] -> invalid_arg "Onion.wrap: empty route"
    | (pk_last, payload_last) :: rest ->
        let innermost = encrypt_layer g ~pk:pk_last { payload = payload_last; next = "" } in
        List.fold_left
          (fun inner (pk, payload) -> encrypt_layer g ~pk { payload; next = inner })
          innermost rest
  in
  if pad_to = 0 then onion
  else if String.length onion > pad_to then
    invalid_arg
      (Printf.sprintf "Onion.wrap: onion of %d bytes exceeds pad_to=%d"
         (String.length onion) pad_to)
  else onion ^ Monet_hash.Drbg.bytes g (pad_to - String.length onion)

(** One relay's processing: returns its payload and the onion to
    forward ("" when this relay is the exit). With [repad] the
    forwarded onion is padded back to the same fixed size with the
    relay's own randomness. *)
let peel ?repad ~(sk : Sc.t) (onion : string) : (string * string, string) result =
  match decrypt_layer ~sk onion with
  | Error e -> Error e
  | Ok { payload; next } ->
      let next =
        match repad with
        | Some (g, pad_to) when next <> "" && String.length next < pad_to ->
            next ^ Monet_hash.Drbg.bytes g (pad_to - String.length next)
        | _ -> next
      in
      Ok (payload, next)
