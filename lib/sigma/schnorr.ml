(** Non-interactive Schnorr proof of knowledge of a discrete logarithm:
    given X, prove knowledge of x with X = x·G.

    Proofs carry the commitment point R = r·G (64 bytes on the wire,
    as before): verification recomputes the Fiat–Shamir challenge from
    R and checks the group identity s·G − c·X − R = O, which
    {!verify_batch} folds across many proofs into one multi-scalar
    multiplication. *)

open Monet_ec

type proof = { r : Point.t; s : Sc.t }

let proof_size = 64

let encode_proof (w : Monet_util.Wire.writer) (p : proof) =
  Monet_util.Wire.write_fixed w (Point.encode p.r);
  Monet_util.Wire.write_fixed w (Sc.to_bytes_le p.s)

let decode_proof (r : Monet_util.Wire.reader) : proof =
  let rp = Point.decode_exn (Monet_util.Wire.read_fixed r 32) in
  let s = Sc.of_bytes_le (Monet_util.Wire.read_fixed r 32) in
  { r = rp; s }

let challenge_of ~(context : string) ~(xg : Point.t) ~(rg : Point.t) : Sc.t =
  let t = Transcript.create "schnorr" in
  Transcript.absorb t ~label:"ctx" context;
  Transcript.absorb_point t ~label:"X" xg;
  Transcript.absorb_point t ~label:"R" rg;
  Transcript.challenge_scalar t ~label:"c"

let prove ?(context = "") (g : Monet_hash.Drbg.t) ~(x : Sc.t) ~(xg : Point.t) : proof =
  let r = Sc.random_nonzero g in
  let rg = Point.mul_base r in
  let c = challenge_of ~context ~xg ~rg in
  { r = rg; s = Sc.add r (Sc.mul c x) }

let verify ?(context = "") ~(xg : Point.t) (p : proof) : bool =
  (* s·G - c·X in one Straus pass must reproduce R. *)
  let c = challenge_of ~context ~xg ~rg:p.r in
  Point.equal (Point.double_mul (Sc.neg c) xg p.s) p.r

(* 128-bit random-linear-combination coefficients, derived by hashing
   the whole batch (derandomized batch verification): an adversary
   committed to the proofs cannot predict them, and 2^-128 is the
   probability a bogus batch still sums to O. *)
let randomizers ~(tag : string) (parts : string list) (n : int) : Sc.t array =
  let seed = Monet_hash.Hash.tagged ("batch/" ^ tag) parts in
  let g = Monet_hash.Drbg.create ~seed in
  Array.init n (fun _ ->
      let z = Sc.of_bytes_le (Monet_hash.Drbg.bytes g 16 ^ String.make 16 '\x00') in
      if Sc.is_zero z then Sc.one else z)

(** Batch-verify proofs of knowledge for statements [xgs]: sample
    random 128-bit zᵢ and check Σ zᵢ·(sᵢ·G − cᵢ·Xᵢ − Rᵢ) = O with a
    single {!Point.msm} over 2n points (the G leg folds into one
    fixed-base comb multiplication). Accepts iff every individual
    {!verify} accepts, except with probability 2⁻¹²⁸ per batch. *)
let verify_batch ?(context = "") (batch : (Point.t * proof) array) : bool =
  let n = Array.length batch in
  if n = 0 then true
  else begin
    let parts =
      List.concat_map
        (fun (xg, p) -> [ Point.encode xg; Point.encode p.r; Sc.to_bytes_le p.s ])
        (Array.to_list batch)
    in
    let zs = randomizers ~tag:"schnorr-pok" (context :: parts) n in
    let s_fold = ref Sc.zero in
    let terms = Array.make (2 * n) (Sc.zero, Point.identity) in
    Array.iteri
      (fun i (xg, p) ->
        let c = challenge_of ~context ~xg ~rg:p.r in
        s_fold := Sc.add !s_fold (Sc.mul zs.(i) p.s);
        terms.(2 * i) <- (Sc.neg (Sc.mul zs.(i) c), xg);
        terms.((2 * i) + 1) <- (zs.(i), Point.neg p.r))
      batch;
    Point.is_identity (Point.add (Point.mul_base !s_fold) (Point.msm terms))
  end
