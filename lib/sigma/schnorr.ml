(** Non-interactive Schnorr proof of knowledge of a discrete logarithm:
    given X, prove knowledge of x with X = x·G. *)

open Monet_ec

type proof = { c : Sc.t; s : Sc.t }

let proof_size = 64

let encode_proof (w : Monet_util.Wire.writer) (p : proof) =
  Monet_util.Wire.write_fixed w (Sc.to_bytes_le p.c);
  Monet_util.Wire.write_fixed w (Sc.to_bytes_le p.s)

let decode_proof (r : Monet_util.Wire.reader) : proof =
  let c = Sc.of_bytes_le (Monet_util.Wire.read_fixed r 32) in
  let s = Sc.of_bytes_le (Monet_util.Wire.read_fixed r 32) in
  { c; s }

let prove ?(context = "") (g : Monet_hash.Drbg.t) ~(x : Sc.t) ~(xg : Point.t) : proof =
  let r = Sc.random_nonzero g in
  let rg = Point.mul_base r in
  let t = Transcript.create "schnorr" in
  Transcript.absorb t ~label:"ctx" context;
  Transcript.absorb_point t ~label:"X" xg;
  Transcript.absorb_point t ~label:"R" rg;
  let c = Transcript.challenge_scalar t ~label:"c" in
  { c; s = Sc.add r (Sc.mul c x) }

let verify ?(context = "") ~(xg : Point.t) (p : proof) : bool =
  (* R = sG - cX in one Straus pass; recompute challenge. *)
  let rg = Point.double_mul (Sc.neg p.c) xg p.s in
  let t = Transcript.create "schnorr" in
  Transcript.absorb t ~label:"ctx" context;
  Transcript.absorb_point t ~label:"X" xg;
  Transcript.absorb_point t ~label:"R" rg;
  let c = Transcript.challenge_scalar t ~label:"c" in
  Sc.equal c p.c
