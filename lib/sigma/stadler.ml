(** Stadler-style double-discrete-log proof (cut-and-choose).

    Statement: points (Y, Y') on ed25519 and a public base h ∈ Z_ℓ*.
    The prover knows an integer witness x (0 ≤ x < ℓ) such that

      Y  = x·G            (discrete log on the curve)
      Y' = (h^x mod ℓ)·G  (double discrete log)

    This is exactly the consecutiveness relation of the VCOF chain
    (DESIGN.md §3.2). The protocol runs [reps] independent repetitions
    with binary challenges (soundness error 2^-reps), made
    non-interactive with Fiat–Shamir.

    Per repetition j the prover samples a 384-bit integer r_j (its
    extra 128+ bits statistically mask x over the integers) and
    commits

      t_j = (h^{r_j} mod ℓ)·G      u_j = (r_j mod ℓ)·G

    On challenge bit 0 it reveals r_j (the verifier recomputes both
    commitments); on bit 1 it reveals z_j = r_j - x over the integers,
    and the verifier checks

      t_j = (h^{z_j} mod ℓ)·Y'     u_j = (z_j mod ℓ)·G + Y

    A repetition answerable both ways yields the integer w = r_j - z_j
    with Y = w·G and Y' = (h^w)·G — the same w in both equations — so
    the relation is sound. *)

open Monet_ec

let default_reps = 80
let response_bytes = 48 (* 384-bit masking integers *)

type rep = { t : Point.t; u : Point.t; resp : Bn.t (* r_j or z_j per the bit *) }
type proof = { reps : rep array }

let size (p : proof) : int = 4 + (Array.length p.reps * (32 + 32 + response_bytes))

let encode (w : Monet_util.Wire.writer) (p : proof) =
  Monet_util.Wire.write_u32 w (Array.length p.reps);
  Array.iter
    (fun r ->
      Monet_util.Wire.write_fixed w (Point.encode r.t);
      Monet_util.Wire.write_fixed w (Point.encode r.u);
      Monet_util.Wire.write_fixed w (Bn.to_bytes_le r.resp ~len:response_bytes))
    p.reps

let decode (r : Monet_util.Wire.reader) : proof option =
  try
    let n = Monet_util.Wire.read_u32 r in
    if n > 4096 then None
    else
      let reps =
        Array.init n (fun _ ->
            let t = Point.decode_exn (Monet_util.Wire.read_fixed r 32) in
            let u = Point.decode_exn (Monet_util.Wire.read_fixed r 32) in
            let resp = Bn.of_bytes_le (Monet_util.Wire.read_fixed r response_bytes) in
            { t; u; resp })
      in
      Some { reps }
  with _ -> None

let absorb_statement tr ~h ~y ~y' =
  Transcript.absorb tr ~label:"h" (Sc.to_bytes_le h);
  Transcript.absorb_point tr ~label:"Y" y;
  Transcript.absorb_point tr ~label:"Y'" y'

let challenge_bits ~context ~h ~y ~y' (commitments : (Point.t * Point.t) array) :
    bool array =
  let tr = Transcript.create "stadler" in
  Transcript.absorb tr ~label:"ctx" context;
  absorb_statement tr ~h ~y ~y';
  Array.iter
    (fun (t, u) ->
      Transcript.absorb_point tr ~label:"t" t;
      Transcript.absorb_point tr ~label:"u" u)
    commitments;
  Transcript.challenge_bits tr ~label:"bits" (Array.length commitments)

(** [prove g ~x ~h] proves consecutiveness of Y = x·G and
    Y' = (h^x)·G. The caller supplies the witness [x] only; statements
    are recomputed (and also returned for convenience). *)
let prove ?(context = "") ?(reps = default_reps) (g : Monet_hash.Drbg.t) ~(x : Sc.t)
    ~(h : Sc.t) : proof * Point.t * Point.t =
  let y = Point.mul_base x in
  let x' = Zl.pow h x in
  let y' = Point.mul_base x' in
  (* Sample masking integers, all >= x so responses never go negative. *)
  let rec sample () =
    let r = Bn.of_bytes_le (Monet_hash.Drbg.bytes g response_bytes) in
    if Bn.compare r x < 0 then sample () else r
  in
  let rs = Array.init reps (fun _ -> sample ()) in
  let commitments =
    Array.map
      (fun r ->
        let t = Point.mul_base (Zl.pow h r) in
        let u = Point.mul_base (Sc.of_bn r) in
        (t, u))
      rs
  in
  let bits = challenge_bits ~context ~h ~y ~y' commitments in
  let reps_out =
    Array.init reps (fun j ->
        let t, u = commitments.(j) in
        let resp = if bits.(j) then Bn.sub rs.(j) x else rs.(j) in
        { t; u; resp })
  in
  ({ reps = reps_out }, y, y')

let verify ?(context = "") ~(h : Sc.t) ~(y : Point.t) ~(y' : Point.t) (p : proof) :
    bool =
  let n = Array.length p.reps in
  n > 0
  &&
  let commitments = Array.map (fun r -> (r.t, r.u)) p.reps in
  let bits = challenge_bits ~context ~h ~y ~y' commitments in
  let check j =
    let { t; u; resp } = p.reps.(j) in
    if bits.(j) then
      (* resp = z_j: t = (h^z)·Y',  u = (z mod l)·G + Y *)
      Point.equal t (Point.mul (Zl.pow h resp) y')
      && Point.equal u (Point.add (Point.mul_base (Sc.of_bn resp)) y)
    else
      (* resp = r_j: recompute both commitments *)
      Point.equal t (Point.mul_base (Zl.pow h resp))
      && Point.equal u (Point.mul_base (Sc.of_bn resp))
  in
  let rec go j = j >= n || (check j && go (j + 1)) in
  go 0

(** Batch-verify step proofs sharing one public base [h] (a
    channel-open burst or a published chain: same pp, many (Y, Y')
    statements). Every per-repetition equation is a group identity —
    bit 0:  (h^r)·G − t = O  and  r·G − u = O
    bit 1:  (h^z)·Y' − t = O  and  z·G + Y − u = O
    — so all of them fold under 128-bit randomizers into a single
    multi-scalar multiplication over 2 points per repetition plus
    (Y, Y') per proof, with the G leg paid once as a fixed-base comb
    multiplication. The modular exponentiations h^resp are inherent
    (one per repetition, batched or not) and are served by {!Zl}'s
    per-base comb tables. Accepts iff every individual {!verify}
    accepts, except with probability 2⁻¹²⁸ per batch. *)
let verify_batch ?(context = "") ~(h : Sc.t)
    (batch : (Point.t * Point.t * proof) array) : bool =
  let np = Array.length batch in
  if np = 0 then true
  else
    Array.for_all (fun (_, _, p) -> Array.length p.reps > 0) batch
    &&
    let total_reps =
      Array.fold_left (fun acc (_, _, p) -> acc + Array.length p.reps) 0 batch
    in
    let parts =
      List.concat_map
        (fun (y, y', p) ->
          Point.encode y :: Point.encode y'
          :: List.concat_map
               (fun r ->
                 [
                   Point.encode r.t; Point.encode r.u;
                   Bn.to_bytes_le r.resp ~len:response_bytes;
                 ])
               (Array.to_list p.reps))
        (Array.to_list batch)
    in
    let zs =
      Schnorr.randomizers ~tag:"stadler"
        (context :: Sc.to_bytes_le h :: parts)
        (2 * total_reps)
    in
    let g_fold = ref Sc.zero in
    let terms = Array.make ((2 * total_reps) + (2 * np)) (Sc.zero, Point.identity) in
    let pos = ref 0 in
    let push z pt =
      terms.(!pos) <- (z, pt);
      incr pos
    in
    let zbase = ref 0 in
    Array.iter
      (fun (y, y', p) ->
        let commitments = Array.map (fun r -> (r.t, r.u)) p.reps in
        let bits = challenge_bits ~context ~h ~y ~y' commitments in
        let y_coeff = ref Sc.zero and y'_coeff = ref Sc.zero in
        Array.iteri
          (fun j { t; u; resp } ->
            let za = zs.(!zbase + (2 * j)) and zb = zs.(!zbase + (2 * j) + 1) in
            let hr = Zl.pow h resp in
            if bits.(j) then begin
              (* resp = z: t = (h^z)·Y',  u = (z mod ℓ)·G + Y *)
              y'_coeff := Sc.add !y'_coeff (Sc.mul za hr);
              y_coeff := Sc.add !y_coeff zb;
              g_fold := Sc.add !g_fold (Sc.mul zb (Sc.of_bn resp))
            end
            else
              (* resp = r: t = (h^r)·G,  u = (r mod ℓ)·G *)
              g_fold :=
                Sc.add !g_fold
                  (Sc.add (Sc.mul za hr) (Sc.mul zb (Sc.of_bn resp)));
            push za (Point.neg t);
            push zb (Point.neg u))
          p.reps;
        zbase := !zbase + (2 * Array.length p.reps);
        push !y'_coeff y';
        push !y_coeff y)
      batch;
    Point.is_identity (Point.add (Point.mul_base !g_fold) (Point.msm terms))
