(** Non-interactive Schnorr proof of knowledge of a discrete
    logarithm: given X = x·G, prove knowledge of x.

    Proofs carry the commitment point R = r·G, so verification checks
    the group identity s·G − c·X − R = O; {!verify_batch} folds that
    identity across many proofs into one multi-scalar multiplication
    (random linear combination, see DESIGN.md §3.10). *)

open Monet_ec

type proof = { r : Point.t; s : Sc.t }

val proof_size : int
val encode_proof : Monet_util.Wire.writer -> proof -> unit
val decode_proof : Monet_util.Wire.reader -> proof

val challenge_of : context:string -> xg:Point.t -> rg:Point.t -> Sc.t

val randomizers : tag:string -> string list -> int -> Sc.t array
(** [randomizers ~tag parts n] derives n 128-bit nonzero random-linear-
    combination coefficients by hashing the whole batch content —
    shared by every batch verifier in the tree (derandomized batch
    verification). *)

val prove :
  ?context:string -> Monet_hash.Drbg.t -> x:Sc.t -> xg:Point.t -> proof

val verify : ?context:string -> xg:Point.t -> proof -> bool

val verify_batch : ?context:string -> (Point.t * proof) array -> bool
