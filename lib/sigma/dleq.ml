(** Chaum–Pedersen proof of discrete-log equality:
    given (G1, H1, G2, H2), prove knowledge of x with H1 = x·G1 and
    H2 = x·G2. Used by PVSS share-correctness proofs and by the
    2-party key setup. *)

open Monet_ec

type proof = { c : Sc.t; s : Sc.t }

let encode_proof (w : Monet_util.Wire.writer) (p : proof) =
  Monet_util.Wire.write_fixed w (Sc.to_bytes_le p.c);
  Monet_util.Wire.write_fixed w (Sc.to_bytes_le p.s)

let decode_proof (r : Monet_util.Wire.reader) : proof =
  let c = Sc.of_bytes_le (Monet_util.Wire.read_fixed r 32) in
  let s = Sc.of_bytes_le (Monet_util.Wire.read_fixed r 32) in
  { c; s }

let absorb_statement t ~g1 ~h1 ~g2 ~h2 =
  Transcript.absorb_point t ~label:"G1" g1;
  Transcript.absorb_point t ~label:"H1" h1;
  Transcript.absorb_point t ~label:"G2" g2;
  Transcript.absorb_point t ~label:"H2" h2

let prove ?(context = "") (g : Monet_hash.Drbg.t) ~(x : Sc.t) ~(g1 : Point.t)
    ~(g2 : Point.t) : proof =
  let h1 = Point.mul x g1 and h2 = Point.mul x g2 in
  let r = Sc.random_nonzero g in
  let a1 = Point.mul r g1 and a2 = Point.mul r g2 in
  let t = Transcript.create "dleq" in
  Transcript.absorb t ~label:"ctx" context;
  absorb_statement t ~g1 ~h1 ~g2 ~h2;
  Transcript.absorb_point t ~label:"A1" a1;
  Transcript.absorb_point t ~label:"A2" a2;
  let c = Transcript.challenge_scalar t ~label:"c" in
  { c; s = Sc.add r (Sc.mul c x) }

let verify ?(context = "") ~(g1 : Point.t) ~(h1 : Point.t) ~(g2 : Point.t)
    ~(h2 : Point.t) (p : proof) : bool =
  (* A_i = s·G_i - c·H_i, each leg one Straus pass. *)
  let nc = Sc.neg p.c in
  let a1 = Point.mul2 p.s g1 nc h1 in
  let a2 = Point.mul2 p.s g2 nc h2 in
  let t = Transcript.create "dleq" in
  Transcript.absorb t ~label:"ctx" context;
  absorb_statement t ~g1 ~h1 ~g2 ~h2;
  Transcript.absorb_point t ~label:"A1" a1;
  Transcript.absorb_point t ~label:"A2" a2;
  let c = Transcript.challenge_scalar t ~label:"c" in
  Sc.equal c p.c
