(** Pedersen commitments C = v·G + r·H, with H a nothing-up-my-sleeve
    second generator (hashed to the curve, so its dlog w.r.t. G is
    unknown). Used for channel-state commitments sent to the KES. *)

open Monet_ec

let h : Point.t = Point.hash_to_point "pedersen-h" "monet generator H"

type commitment = Point.t

let commit ~(value : Sc.t) ~(blind : Sc.t) : commitment =
  Point.double_mul blind h value

let verify ~(value : Sc.t) ~(blind : Sc.t) (c : commitment) : bool =
  Point.equal c (commit ~value ~blind)

(** Commitments are additively homomorphic. *)
let add = Point.add
