(** Stadler-style double-discrete-log proof (cut-and-choose).

    Proves knowledge of an integer x with Y = x·G (on ed25519) and
    Y' = (h^x mod ℓ)·G, under binary challenges with [reps]
    repetitions (soundness error 2^-reps), Fiat–Shamir'd. This is the
    proof system behind VCOF consecutiveness (DESIGN.md §3.2). *)

open Monet_ec

val default_reps : int
(** 80 — soundness 2⁻⁸⁰, the production setting. *)

val response_bytes : int
(** Width of the integer responses (384 bits: witness plus ≥128 bits
    of statistical masking). *)

type rep = { t : Point.t; u : Point.t; resp : Bn.t }
type proof = { reps : rep array }

val size : proof -> int
val encode : Monet_util.Wire.writer -> proof -> unit
val decode : Monet_util.Wire.reader -> proof option

val prove :
  ?context:string ->
  ?reps:int ->
  Monet_hash.Drbg.t ->
  x:Sc.t ->
  h:Sc.t ->
  proof * Point.t * Point.t
(** [prove g ~x ~h] returns (proof, Y, Y') for Y = x·G and
    Y' = (h^x mod ℓ)·G. *)

val verify :
  ?context:string -> h:Sc.t -> y:Point.t -> y':Point.t -> proof -> bool

val verify_batch :
  ?context:string -> h:Sc.t -> (Point.t * Point.t * proof) array -> bool
(** [verify_batch ~h [| (y, y', proof); … |]] folds every repetition
    equation of every proof into one multi-scalar multiplication via a
    random linear combination (DESIGN.md §3.10). Accepts iff each
    individual {!verify} accepts, except with probability 2⁻¹²⁸. *)
