(** Small helpers over byte strings used throughout the code base. *)

let xor (a : string) (b : string) : string =
  if String.length a <> String.length b then
    invalid_arg "Bytes_ext.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(** Constant-time equality (accumulator-OR style): the scan is
    branch-free and always covers the full string, so the running time
    depends only on the (public) lengths — never on where the first
    mismatch sits. This is the comparison every secret-material check
    (adaptor witnesses, MAC tags, preimages, signature components)
    must route through; `monet-lint`'s [secret-eq] rule enforces it
    (DESIGN.md §3.7). *)
let ct_equal (a : string) (b : string) : bool =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  for i = 0 to String.length a - 1 do
    acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
  done;
  !acc = 0

let le32_of_int (n : int) : string =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let int_of_le32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let le64_of_int (n : int) : string =
  String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let int_of_le64 (s : string) (off : int) : int =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let concat = String.concat ""
