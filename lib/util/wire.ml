(** Length-prefixed binary serialization.

    All protocol messages are serialized with this module so that the
    communication-overhead experiments (DESIGN.md, E3/E4) measure real
    wire bytes rather than in-memory sizes. The format is a simple
    self-delimiting TLV-free encoding: fixed-size integers are
    little-endian, variable fields carry a 4-byte length prefix. *)

type writer = Buffer.t

let create_writer () : writer = Buffer.create 256
let contents (w : writer) = Buffer.contents w
let write_u8 w n = Buffer.add_char w (Char.chr (n land 0xff))
let write_u32 w n = Buffer.add_string w (Bytes_ext.le32_of_int n)
let write_u64 w n = Buffer.add_string w (Bytes_ext.le64_of_int n)

let write_bytes w (s : string) =
  write_u32 w (String.length s);
  Buffer.add_string w s

(* Fixed-width field: no length prefix, reader must know the width. *)
let write_fixed w (s : string) = Buffer.add_string w s

let write_list w f xs =
  write_u32 w (List.length xs);
  List.iter (f w) xs

type reader = { buf : string; mutable pos : int }

exception Truncated

let reader_of_string buf = { buf; pos = 0 }

let read_u8 r =
  if r.pos >= String.length r.buf then raise Truncated;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  if r.pos + 4 > String.length r.buf then raise Truncated;
  let v = Bytes_ext.int_of_le32 r.buf r.pos in
  r.pos <- r.pos + 4;
  v

let read_u64 r =
  if r.pos + 8 > String.length r.buf then raise Truncated;
  let v = Bytes_ext.int_of_le64 r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let read_fixed r n =
  if r.pos + n > String.length r.buf then raise Truncated;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes r =
  let n = read_u32 r in
  read_fixed r n

let read_list r f =
  let n = read_u32 r in
  (* Every element consumes at least one byte, so a count beyond the
     remaining input is corrupt — reject it up front rather than
     allocating a multi-gigabyte list from a bit-flipped prefix. *)
  if n > String.length r.buf - r.pos then raise Truncated;
  List.init n (fun _ -> f r)

let at_end r = r.pos = String.length r.buf

(** [size encode x] is the number of wire bytes [x] occupies. *)
let size encode x =
  let w = create_writer () in
  encode w x;
  String.length (contents w)
