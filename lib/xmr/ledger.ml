(** The simulated Monero ledger: global output list, key-image set,
    mempool and block production.

    Validation implements φ_M: every ring member must exist and carry
    the input's denomination, the LSAG must verify over the ring's
    one-time keys, the key image must be fresh, and amounts must
    balance. Maintaining the ledger is maintaining the UTXO relation ℝ
    of the paper's functionality 𝓕_M — spent outputs stay visible (ring
    decoys need them) and double-spending is excluded by key images,
    exactly as on Monero. *)

open Monet_ec

type entry = { out : Tx.output; height : int }

type block = { b_height : int; b_txs : Tx.t list }

type t = {
  mutable outputs : entry array;
  mutable n_outputs : int;
  key_images : (string, unit) Hashtbl.t;
  mutable height : int;
  mutable mempool : (int * Tx.t) list; (* (relay priority, tx) *)
  mutable blocks : block list; (* newest first *)
  by_amount : (int, int list ref) Hashtbl.t; (* denomination -> global indices *)
  mutable txs_confirmed : int;
}

let create () : t =
  {
    outputs = Array.make 1024 { out = { Tx.otk = Point.identity; amount = 0 }; height = 0 };
    n_outputs = 0;
    key_images = Hashtbl.create 256;
    height = 0;
    mempool = [];
    blocks = [];
    by_amount = Hashtbl.create 64;
    txs_confirmed = 0;
  }

let output_count (l : t) = l.n_outputs

let get_output (l : t) (i : int) : entry option =
  if i < 0 || i >= l.n_outputs then None else Some l.outputs.(i)

let add_output (l : t) (out : Tx.output) : int =
  if l.n_outputs = Array.length l.outputs then begin
    let bigger = Array.make (2 * Array.length l.outputs) l.outputs.(0) in
    Array.blit l.outputs 0 bigger 0 l.n_outputs;
    l.outputs <- bigger
  end;
  let idx = l.n_outputs in
  l.outputs.(idx) <- { out; height = l.height };
  l.n_outputs <- idx + 1;
  let bucket =
    match Hashtbl.find_opt l.by_amount out.Tx.amount with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add l.by_amount out.Tx.amount b;
        b
  in
  bucket := idx :: !bucket;
  idx

(** Mint an output outside any transaction (genesis / test setup). *)
let genesis_output (l : t) (out : Tx.output) : int = add_output l out

type verdict = Valid | Invalid of string

let m_validate = Monet_obs.Metrics.counter "xmr.validate"

let validate (l : t) (tx : Tx.t) : verdict =
  Monet_obs.Metrics.bump m_validate;
  Monet_obs.Trace.span "xmr.validate"
    ~attrs:[ ("inputs", string_of_int (List.length tx.Tx.inputs)) ]
  @@ fun () ->
  let prefix = Tx.prefix_bytes tx in
  let rec check_inputs seen_kis = function
    | [] -> None
    | (i : Tx.input) :: rest ->
        let ki = Point.encode i.key_image in
        if Array.length i.ring_refs = 0 then Some "empty ring"
        else if Hashtbl.mem l.key_images ki then Some "key image already spent"
        else if List.mem ki seen_kis then Some "duplicate key image within tx"
        else begin
          (* One pass: collect the ring keys, dropping refs that are
             missing or of the wrong denomination — a size mismatch
             afterwards means some member was bad. *)
          let ring =
            Array.to_list i.ring_refs
            |> List.filter_map (fun r ->
                   match get_output l r with
                   | Some e when e.out.Tx.amount = i.amount -> Some e.out.Tx.otk
                   | Some _ | None -> None)
            |> Array.of_list
          in
          if Array.length ring <> Array.length i.ring_refs then
            Some "ring member missing or wrong denomination"
          else begin
            if not (Monet_sig.Lsag.verify ~ring ~msg:prefix i.signature) then
              Some "ring signature invalid"
            else if not (Point.equal i.key_image i.signature.Monet_sig.Lsag.key_image)
            then Some "key image mismatch"
            else check_inputs (ki :: seen_kis) rest
          end
        end
  in
  match check_inputs [] tx.Tx.inputs with
  | Some e -> Invalid e
  | None ->
      if tx.Tx.inputs = [] then Invalid "no inputs"
      else if List.exists (fun (o : Tx.output) -> o.amount <= 0) tx.Tx.outputs then
        Invalid "non-positive output"
      else if Tx.total_in tx <> Tx.total_out tx + tx.Tx.fee then
        Invalid "amounts do not balance"
      else Valid

(** Submit to the mempool. Key-image conflicts with pending
    transactions are rejected unless the newcomer carries a strictly
    higher relay [priority] (modelling the fee-bump race a watching
    channel party wins against a cheating old-state close that is
    still unmined; priority is relay metadata, since the pre-signed
    transaction bytes cannot change). *)
let submit ?(priority = 0) (l : t) (tx : Tx.t) : (unit, string) result =
  match validate l tx with
  | Invalid e -> Error e
  | Valid ->
      let conflicts_with ((_, m) : int * Tx.t) =
        List.exists
          (fun (i : Tx.input) ->
            List.exists
              (fun (j : Tx.input) -> Point.equal i.key_image j.key_image)
              m.Tx.inputs)
          tx.Tx.inputs
      in
      let conflicting, rest = List.partition conflicts_with l.mempool in
      (match conflicting with
      | [] ->
          l.mempool <- (priority, tx) :: l.mempool;
          Ok ()
      | existing ->
          if List.for_all (fun (p, _) -> priority > p) existing then begin
            l.mempool <- (priority, tx) :: rest;
            Ok ()
          end
          else Error "key image conflicts with mempool")

(** Mine a block: include every (still-valid) mempool transaction. *)
let mine (l : t) : block =
  l.height <- l.height + 1;
  let included =
    List.filter_map
      (fun (_, tx) ->
        match validate l tx with
        | Valid ->
            List.iter
              (fun (i : Tx.input) ->
                Hashtbl.replace l.key_images (Point.encode i.key_image) ())
              tx.Tx.inputs;
            List.iter (fun o -> ignore (add_output l o)) tx.Tx.outputs;
            l.txs_confirmed <- l.txs_confirmed + 1;
            Some tx
        | Invalid _ -> None)
      (List.rev l.mempool)
  in
  l.mempool <- [];
  let b = { b_height = l.height; b_txs = included } in
  l.blocks <- b :: l.blocks;
  b

(** Sample a ring for an input that really spends [real] (a global
    index): decoys share the denomination; the real index is inserted
    at a random position and the ring is sorted as Monero does. Returns
    (ring_refs, position of the real member). *)
let sample_ring (g : Monet_hash.Drbg.t) (l : t) ~(real : int) ~(ring_size : int) :
    int array * int =
  let amount =
    match get_output l real with
    | Some e -> e.out.Tx.amount
    | None -> invalid_arg "Ledger.sample_ring: unknown output index"
  in
  let candidates =
    match Hashtbl.find_opt l.by_amount amount with
    | Some b -> List.filter (fun i -> i <> real) !b
    | None -> []
  in
  let pool = Array.of_list candidates in
  let n_decoys = min (ring_size - 1) (Array.length pool) in
  (* Fisher-Yates partial shuffle for distinct decoys. *)
  for i = 0 to n_decoys - 1 do
    let j = i + Monet_hash.Drbg.int g (Array.length pool - i) in
    let t = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- t
  done;
  let refs = Array.append [| real |] (Array.sub pool 0 n_decoys) in
  Array.sort compare refs;
  let pi = ref 0 in
  Array.iteri (fun i r -> if r = real then pi := i) refs;
  (refs, !pi)

let ring_of_refs (l : t) (refs : int array) : Point.t array =
  Array.map
    (fun r ->
      match get_output l r with
      | Some e -> e.out.Tx.otk
      | None -> invalid_arg "Ledger.ring_of_refs: unknown output index")
    refs

(** Mint [n] extra outputs of [amount] to throwaway keys so rings of
    that denomination always have decoys (simulation convenience; on
    the real chain the decoy pool is organic). *)
let ensure_decoys (g : Monet_hash.Drbg.t) (l : t) ~(amount : int) ~(n : int) : unit =
  let existing =
    match Hashtbl.find_opt l.by_amount amount with Some b -> List.length !b | None -> 0
  in
  for _ = existing + 1 to n do
    ignore
      (genesis_output l { Tx.otk = Point.mul_base (Sc.random_nonzero g); amount })
  done
