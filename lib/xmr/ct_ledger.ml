(** A RingCT ledger: confidential-amount transactions over MLSAG
    rings. Separate from {!Ledger} (the paper's plain-amount model 𝓕_M)
    so both chain flavours coexist; MoNet's channel construction is
    oblivious to which one carries it.

    Structural differences from the plain ledger, all inherited from
    real RingCT: amounts are Pedersen commitments with range proofs,
    decoys are *any* outputs (no denomination matching — the decoy
    pool is the whole chain), and each input carries a pseudo-output
    commitment bridging the ring to the balance equation. *)

open Monet_ec

type ct_output = {
  cto_otk : Point.t;
  cto_commitment : Ct.commitment;
  cto_range : Range_proof.t;
}

type ct_input = {
  cti_ring_refs : int array;
  cti_pseudo : Ct.commitment;
  cti_key_image : Point.t;
  cti_sig : Monet_sig.Mlsag.signature;
}

type ct_tx = { ct_inputs : ct_input list; ct_outputs : ct_output list; ct_fee : int }

(* The MLSAG message: everything but the ring signatures. *)
let prefix (tx : ct_tx) : string =
  let w = Monet_util.Wire.create_writer () in
  List.iter
    (fun (i : ct_input) ->
      Monet_util.Wire.write_list w Monet_util.Wire.write_u32 (Array.to_list i.cti_ring_refs);
      Monet_util.Wire.write_fixed w (Point.encode i.cti_pseudo);
      Monet_util.Wire.write_fixed w (Point.encode i.cti_key_image))
    tx.ct_inputs;
  List.iter
    (fun (o : ct_output) ->
      Monet_util.Wire.write_fixed w (Point.encode o.cto_otk);
      Monet_util.Wire.write_fixed w (Point.encode o.cto_commitment))
    tx.ct_outputs;
  Monet_util.Wire.write_u64 w tx.ct_fee;
  Monet_util.Wire.contents w

type entry = { e_otk : Point.t; e_commitment : Ct.commitment }

type t = {
  mutable outputs : entry array;
  mutable n : int;
  key_images : (string, unit) Hashtbl.t;
  mutable txs_confirmed : int;
}

let create () : t =
  { outputs = Array.make 256 { e_otk = Point.identity; e_commitment = Point.identity };
    n = 0; key_images = Hashtbl.create 64; txs_confirmed = 0 }

let add_entry (c : t) (e : entry) : int =
  if c.n = Array.length c.outputs then begin
    let bigger = Array.make (2 * c.n) c.outputs.(0) in
    Array.blit c.outputs 0 bigger 0 c.n;
    c.outputs <- bigger
  end;
  c.outputs.(c.n) <- e;
  c.n <- c.n + 1;
  c.n - 1

(** Mint an output with a known opening (genesis / tests). *)
let genesis (c : t) ~(otk : Point.t) ~(amount : int) ~(blind : Sc.t) : int =
  add_entry c { e_otk = otk; e_commitment = Ct.commit ~amount ~blind }

let validate (c : t) (tx : ct_tx) : (unit, string) result =
  let msg = prefix tx in
  let rec check_inputs = function
    | [] -> Ok ()
    | (i : ct_input) :: rest ->
        let ki = Point.encode i.cti_key_image in
        if Hashtbl.mem c.key_images ki then Error "key image spent"
        else if Array.exists (fun r -> r < 0 || r >= c.n) i.cti_ring_refs then
          Error "missing ring member"
        else begin
          let ring =
            Array.map
              (fun r ->
                { Monet_sig.Mlsag.p = c.outputs.(r).e_otk;
                  d = Ct.diff c.outputs.(r).e_commitment i.cti_pseudo })
              i.cti_ring_refs
          in
          if not (Monet_sig.Mlsag.verify ~ring ~msg i.cti_sig) then
            Error "mlsag invalid"
          else if not (Point.equal i.cti_key_image i.cti_sig.Monet_sig.Mlsag.key_image)
          then Error "key image mismatch"
          else check_inputs rest
        end
  in
  if tx.ct_inputs = [] then Error "no inputs"
  else
    match check_inputs tx.ct_inputs with
    | Error e -> Error e
    | Ok () ->
        if
          not
            (Ct.balances
               ~pseudo_ins:(List.map (fun i -> i.cti_pseudo) tx.ct_inputs)
               ~outs:(List.map (fun o -> o.cto_commitment) tx.ct_outputs)
               ~fee:tx.ct_fee)
        then Error "commitments do not balance"
        else if
          not
            (Range_proof.verify_batch
               (Array.of_list
                  (List.map (fun o -> (o.cto_commitment, o.cto_range)) tx.ct_outputs)))
        then Error "range proof invalid"
        else Ok ()

let apply (c : t) (tx : ct_tx) : (unit, string) result =
  match validate c tx with
  | Error e -> Error e
  | Ok () ->
      List.iter
        (fun (i : ct_input) -> Hashtbl.replace c.key_images (Point.encode i.cti_key_image) ())
        tx.ct_inputs;
      List.iter
        (fun (o : ct_output) ->
          ignore (add_entry c { e_otk = o.cto_otk; e_commitment = o.cto_commitment }))
        tx.ct_outputs;
      c.txs_confirmed <- c.txs_confirmed + 1;
      Ok ()

(** An owned CT coin: its position, keys and opening. *)
type coin = { global_index : int; kp : Monet_sig.Sig_core.keypair; amount : int; blind : Sc.t }

(** Build a full CT transaction spending [coins] to one recipient
    (plus change to a fresh key): decoys are arbitrary outputs, as on
    the real RingCT chain. Returns (tx, change coin when any). *)
let spend (g : Monet_hash.Drbg.t) (c : t) ~(coins : coin list) ~(dest : Point.t)
    ~(amount : int) ~(fee : int) ~(ring_size : int) :
    (ct_tx * coin option, string) result =
  let total = List.fold_left (fun a k -> a + k.amount) 0 coins in
  if total < amount + fee then Error "insufficient amount"
  else begin
    let change = total - amount - fee in
    let out_blind_main = Sc.random_nonzero g in
    let change_kp = Monet_sig.Sig_core.gen g in
    let out_blind_change = Sc.random_nonzero g in
    let outputs_spec =
      (dest, amount, out_blind_main)
      :: (if change > 0 then [ (change_kp.Monet_sig.Sig_core.vk, change, out_blind_change) ] else [])
    in
    let out_blinds = List.map (fun (_, _, b) -> b) outputs_spec in
    let pseudo_blinds = Ct.pseudo_blinds g ~n_inputs:(List.length coins) ~out_blinds in
    let outputs =
      List.map
        (fun (otk, a, b) ->
          { cto_otk = otk; cto_commitment = Ct.commit ~amount:a ~blind:b;
            cto_range = Range_proof.prove g ~amount:a ~blind:b })
        outputs_spec
    in
    (* Ring sampling: arbitrary decoys. *)
    let plan =
      List.map2
        (fun (coin : coin) pseudo_blind ->
          let pool = Array.init c.n (fun i -> i) in
          let n_decoys = min (ring_size - 1) (max 0 (c.n - 1)) in
          let decoys = ref [] in
          while List.length !decoys < n_decoys do
            let cand = pool.(Monet_hash.Drbg.int g c.n) in
            if cand <> coin.global_index && not (List.mem cand !decoys) then
              decoys := cand :: !decoys
          done;
          let refs = Array.of_list (List.sort compare (coin.global_index :: !decoys)) in
          let pi = ref 0 in
          Array.iteri (fun i r -> if r = coin.global_index then pi := i) refs;
          (coin, pseudo_blind, refs, !pi))
        coins pseudo_blinds
    in
    let skeleton_inputs =
      List.map
        (fun ((coin : coin), pseudo_blind, refs, _) ->
          let pseudo = Ct.commit ~amount:coin.amount ~blind:pseudo_blind in
          let ki = Monet_sig.Lsag.key_image ~sk:coin.kp.Monet_sig.Sig_core.sk ~vk:coin.kp.vk in
          { cti_ring_refs = refs; cti_pseudo = pseudo; cti_key_image = ki;
            cti_sig = { Monet_sig.Mlsag.c0 = Sc.zero; s1 = [||]; s2 = [||]; key_image = ki } })
        plan
    in
    let tx0 = { ct_inputs = skeleton_inputs; ct_outputs = outputs; ct_fee = fee } in
    let msg = prefix tx0 in
    let inputs =
      List.map2
        (fun ((coin : coin), pseudo_blind, refs, pi) (skel : ct_input) ->
          let ring =
            Array.map
              (fun r ->
                { Monet_sig.Mlsag.p = c.outputs.(r).e_otk;
                  d = Ct.diff c.outputs.(r).e_commitment skel.cti_pseudo })
              refs
          in
          (* z = blind_real - pseudo_blind opens C_real - pseudo as a
             commitment to zero. *)
          let z = Sc.sub coin.blind pseudo_blind in
          let sg =
            Monet_sig.Mlsag.sign g ~ring ~pi ~sk:coin.kp.Monet_sig.Sig_core.sk ~z ~msg
          in
          { skel with cti_sig = sg })
        plan skeleton_inputs
    in
    let tx = { tx0 with ct_inputs = inputs } in
    let change_coin =
      if change > 0 then
        Some { global_index = -1 (* set after apply *); kp = change_kp; amount = change;
               blind = out_blind_change }
      else None
    in
    Ok (tx, change_coin)
  end
