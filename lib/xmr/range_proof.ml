(** Bit-decomposition range proofs for Pedersen amount commitments
    (Borromean-style, as pre-Bulletproof Monero).

    For C = a·H + b·G with a ∈ [0, 2^n), the prover publishes per-bit
    commitments C_i = a_i·2^i·H + b_i·G with a_i ∈ {0,1} and
    Σ C_i = C, plus for each bit a Chaum–Pedersen OR-proof that

      C_i = b_i·G   ∨   C_i − 2^i·H = b_i·G

    i.e. each C_i hides either 0 or 2^i. The OR composition is the
    standard CDS trick: simulate the false branch, split the Fiat–
    Shamir challenge.

    OR-proofs carry both commitment points a₀, a₁ (and derive e₁ from
    the recomputed challenge), so every check is a group identity
    sⱼ·G − eⱼ·stmtⱼ − aⱼ = O — the form {!verify_batch} folds across
    all bits of all proofs into a single multi-scalar multiplication
    (DESIGN.md §3.10). *)

open Monet_ec

type or_proof = { a0 : Point.t; a1 : Point.t; e0 : Sc.t; s0 : Sc.t; s1 : Sc.t }

type t = { bit_commitments : Point.t array; proofs : or_proof array }

let nbits_default = 16

let challenge ~(stmt0 : Point.t) ~(stmt1 : Point.t) ~(a0 : Point.t) ~(a1 : Point.t)
    ~(context : string) : Sc.t =
  Sc.of_hash "rangeproof-or"
    [ context; Point.encode stmt0; Point.encode stmt1; Point.encode a0; Point.encode a1 ]

(* Prove stmt_real = blind·G where stmt_real is branch [real] of
   (stmt0, stmt1); the other branch is simulated. *)
let prove_or (g : Monet_hash.Drbg.t) ~(context : string) ~(stmt0 : Point.t)
    ~(stmt1 : Point.t) ~(real : int) ~(blind : Sc.t) : or_proof =
  let k = Sc.random_nonzero g in
  (* Simulated branch: pick its challenge and response first. *)
  let e_sim = Sc.random_nonzero g and s_sim = Sc.random_nonzero g in
  let stmt_sim = if real = 0 then stmt1 else stmt0 in
  let a_sim = Point.double_mul (Sc.neg e_sim) stmt_sim s_sim in
  let a_real = Point.mul_base k in
  let a0, a1 = if real = 0 then (a_real, a_sim) else (a_sim, a_real) in
  let e = challenge ~stmt0 ~stmt1 ~a0 ~a1 ~context in
  let e_real = Sc.sub e e_sim in
  let s_real = Sc.add k (Sc.mul e_real blind) in
  if real = 0 then { a0; a1; e0 = e_real; s0 = s_real; s1 = s_sim }
  else { a0; a1; e0 = e_sim; s0 = s_sim; s1 = s_real }

(* The second branch challenge is bound by e₀ + e₁ = H(transcript). *)
let e1_of ~(context : string) ~(stmt0 : Point.t) ~(stmt1 : Point.t) (p : or_proof) :
    Sc.t =
  Sc.sub (challenge ~stmt0 ~stmt1 ~a0:p.a0 ~a1:p.a1 ~context) p.e0

let verify_or ~(context : string) ~(stmt0 : Point.t) ~(stmt1 : Point.t) (p : or_proof)
    : bool =
  let e1 = e1_of ~context ~stmt0 ~stmt1 p in
  Point.equal (Point.double_mul (Sc.neg p.e0) stmt0 p.s0) p.a0
  && Point.equal (Point.double_mul (Sc.neg e1) stmt1 p.s1) p.a1

(** Prove C = amount·H + blind·G has amount in [0, 2^nbits). Returns
    the proof; the verifier recomputes C as the sum of the bit
    commitments. *)
let prove ?(nbits = nbits_default) (g : Monet_hash.Drbg.t) ~(amount : int)
    ~(blind : Sc.t) : t =
  if amount < 0 || (nbits < 63 && amount >= 1 lsl nbits) then
    invalid_arg "Range_proof.prove: amount out of range";
  (* Split the blinding over the bits so Σ C_i = C exactly. *)
  let blinds = Array.init nbits (fun _ -> Sc.random_nonzero g) in
  let partial = Array.sub blinds 0 (nbits - 1) in
  let partial_sum = Array.fold_left Sc.add Sc.zero partial in
  blinds.(nbits - 1) <- Sc.sub blind partial_sum;
  let bit_commitments =
    Array.init nbits (fun i ->
        let bit = (amount lsr i) land 1 in
        Ct.commit ~amount:(bit lsl i) ~blind:blinds.(i))
  in
  let proofs =
    Array.init nbits (fun i ->
        let bit = (amount lsr i) land 1 in
        let c_i = bit_commitments.(i) in
        let stmt0 = c_i in
        let stmt1 = Point.sub_point c_i (Point.mul (Sc.of_int (1 lsl i)) Ct.h) in
        prove_or g ~context:(string_of_int i) ~stmt0 ~stmt1 ~real:bit ~blind:blinds.(i))
  in
  { bit_commitments; proofs }

let verify ?(nbits = nbits_default) (commitment : Point.t) (p : t) : bool =
  Array.length p.bit_commitments = nbits
  && Array.length p.proofs = nbits
  && Point.equal commitment (Array.fold_left Point.add Point.identity p.bit_commitments)
  &&
  let ok = ref true in
  Array.iteri
    (fun i proof ->
      if !ok then begin
        let c_i = p.bit_commitments.(i) in
        let stmt0 = c_i in
        let stmt1 = Point.sub_point c_i (Point.mul (Sc.of_int (1 lsl i)) Ct.h) in
        ok := verify_or ~context:(string_of_int i) ~stmt0 ~stmt1 proof
      end)
    p.proofs;
  !ok

let m_batch = Monet_obs.Metrics.counter "xmr.range_batch_verify"
let m_batch_proofs = Monet_obs.Metrics.counter "xmr.range_batch_proofs"

(** Batch-verify range proofs against their commitments with one
    multi-scalar multiplication (plus one fixed-base comb each for the
    folded G and H legs). Every per-bit OR equation and every
    Σ Cᵢ = C balance check is multiplied by an independent 128-bit
    randomizer and summed; a batch with any invalid proof survives
    with probability ≤ 2⁻¹²⁸. Accepts iff each individual {!verify}
    accepts (up to that error). *)
let verify_batch ?(nbits = nbits_default) (batch : (Point.t * t) array) : bool =
  Monet_obs.Metrics.bump m_batch;
  Monet_obs.Metrics.add m_batch_proofs (Array.length batch);
  Array.for_all
    (fun ((_ : Point.t), p) ->
      Array.length p.bit_commitments = nbits && Array.length p.proofs = nbits)
    batch
  &&
  let n = Array.length batch in
  if n = 0 then true
  else begin
    let parts =
      List.concat_map
        (fun (c, p) ->
          Point.encode c
          :: (Array.to_list p.bit_commitments |> List.map Point.encode)
          @ List.concat_map
              (fun q ->
                [
                  Point.encode q.a0; Point.encode q.a1; Sc.to_bytes_le q.e0;
                  Sc.to_bytes_le q.s0; Sc.to_bytes_le q.s1;
                ])
              (Array.to_list p.proofs))
        (Array.to_list batch)
    in
    let zs =
      Monet_sigma.Schnorr.randomizers ~tag:"range-proof" parts (n * ((2 * nbits) + 1))
    in
    (* Per proof: 2·nbits OR equations + 1 balance equation.
       Folding z·(s·G − e·stmt − a) = O across branches:
         branch 0 (stmt = Cᵢ):        z₀·s₀ on G, −z₀·e₀ on Cᵢ, z₀ on −a₀
         branch 1 (stmt = Cᵢ − 2ⁱ·H): z₁·s₁ on G, −z₁·e₁ on Cᵢ,
                                       z₁·e₁·2ⁱ on H, z₁ on −a₁
       and the balance z₊·(Σ Cᵢ − C): z₊ on each Cᵢ, z₊ on −C. *)
    let g_fold = ref Sc.zero and h_fold = ref Sc.zero in
    let terms = Array.make (n * ((3 * nbits) + 1)) (Sc.zero, Point.identity) in
    let pos = ref 0 in
    let push z pt =
      terms.(!pos) <- (z, pt);
      incr pos
    in
    Array.iteri
      (fun j (commitment, p) ->
        let zbase = j * ((2 * nbits) + 1) in
        let z_sum = zs.(zbase + (2 * nbits)) in
        Array.iteri
          (fun i q ->
            let c_i = p.bit_commitments.(i) in
            let stmt0 = c_i in
            let stmt1 = Point.sub_point c_i (Point.mul (Sc.of_int (1 lsl i)) Ct.h) in
            let e1 = e1_of ~context:(string_of_int i) ~stmt0 ~stmt1 q in
            let z0 = zs.(zbase + (2 * i)) and z1 = zs.(zbase + (2 * i) + 1) in
            g_fold := Sc.add !g_fold (Sc.add (Sc.mul z0 q.s0) (Sc.mul z1 q.s1));
            h_fold :=
              Sc.add !h_fold (Sc.mul (Sc.mul z1 e1) (Sc.of_int (1 lsl i)));
            let ci_coeff =
              Sc.sub z_sum (Sc.add (Sc.mul z0 q.e0) (Sc.mul z1 e1))
            in
            push ci_coeff c_i;
            push z0 (Point.neg q.a0);
            push z1 (Point.neg q.a1))
          p.proofs;
        push z_sum (Point.neg commitment))
      batch;
    Point.is_identity
      (Point.add
         (Point.add (Point.mul_base !g_fold) (Point.mul !h_fold Ct.h))
         (Point.msm terms))
  end

let size_bytes ?(nbits = nbits_default) () : int = nbits * (32 + (5 * 32))
