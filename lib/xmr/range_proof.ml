(** Bit-decomposition range proofs for Pedersen amount commitments
    (Borromean-style, as pre-Bulletproof Monero).

    For C = a·H + b·G with a ∈ [0, 2^n), the prover publishes per-bit
    commitments C_i = a_i·2^i·H + b_i·G with a_i ∈ {0,1} and
    Σ C_i = C, plus for each bit a Chaum–Pedersen OR-proof that

      C_i = b_i·G   ∨   C_i − 2^i·H = b_i·G

    i.e. each C_i hides either 0 or 2^i. The OR composition is the
    standard CDS trick: simulate the false branch, split the Fiat–
    Shamir challenge. *)

open Monet_ec

type or_proof = { e0 : Sc.t; s0 : Sc.t; e1 : Sc.t; s1 : Sc.t }

type t = { bit_commitments : Point.t array; proofs : or_proof array }

let nbits_default = 16

let challenge ~(stmt0 : Point.t) ~(stmt1 : Point.t) ~(a0 : Point.t) ~(a1 : Point.t)
    ~(context : string) : Sc.t =
  Sc.of_hash "rangeproof-or"
    [ context; Point.encode stmt0; Point.encode stmt1; Point.encode a0; Point.encode a1 ]

(* Prove stmt_real = blind·G where stmt_real is branch [real] of
   (stmt0, stmt1); the other branch is simulated. *)
let prove_or (g : Monet_hash.Drbg.t) ~(context : string) ~(stmt0 : Point.t)
    ~(stmt1 : Point.t) ~(real : int) ~(blind : Sc.t) : or_proof =
  let k = Sc.random_nonzero g in
  (* Simulated branch: pick its challenge and response first. *)
  let e_sim = Sc.random_nonzero g and s_sim = Sc.random_nonzero g in
  let stmt_sim = if real = 0 then stmt1 else stmt0 in
  let a_sim = Point.double_mul (Sc.neg e_sim) stmt_sim s_sim in
  let a_real = Point.mul_base k in
  let a0, a1 = if real = 0 then (a_real, a_sim) else (a_sim, a_real) in
  let e = challenge ~stmt0 ~stmt1 ~a0 ~a1 ~context in
  let e_real = Sc.sub e e_sim in
  let s_real = Sc.add k (Sc.mul e_real blind) in
  if real = 0 then { e0 = e_real; s0 = s_real; e1 = e_sim; s1 = s_sim }
  else { e0 = e_sim; s0 = s_sim; e1 = e_real; s1 = s_real }

let verify_or ~(context : string) ~(stmt0 : Point.t) ~(stmt1 : Point.t) (p : or_proof)
    : bool =
  let a0 = Point.double_mul (Sc.neg p.e0) stmt0 p.s0 in
  let a1 = Point.double_mul (Sc.neg p.e1) stmt1 p.s1 in
  Sc.equal (Sc.add p.e0 p.e1) (challenge ~stmt0 ~stmt1 ~a0 ~a1 ~context)

(** Prove C = amount·H + blind·G has amount in [0, 2^nbits). Returns
    the proof; the verifier recomputes C as the sum of the bit
    commitments. *)
let prove ?(nbits = nbits_default) (g : Monet_hash.Drbg.t) ~(amount : int)
    ~(blind : Sc.t) : t =
  if amount < 0 || (nbits < 63 && amount >= 1 lsl nbits) then
    invalid_arg "Range_proof.prove: amount out of range";
  (* Split the blinding over the bits so Σ C_i = C exactly. *)
  let blinds = Array.init nbits (fun _ -> Sc.random_nonzero g) in
  let partial = Array.sub blinds 0 (nbits - 1) in
  let partial_sum = Array.fold_left Sc.add Sc.zero partial in
  blinds.(nbits - 1) <- Sc.sub blind partial_sum;
  let bit_commitments =
    Array.init nbits (fun i ->
        let bit = (amount lsr i) land 1 in
        Ct.commit ~amount:(bit lsl i) ~blind:blinds.(i))
  in
  let proofs =
    Array.init nbits (fun i ->
        let bit = (amount lsr i) land 1 in
        let c_i = bit_commitments.(i) in
        let stmt0 = c_i in
        let stmt1 = Point.sub_point c_i (Point.mul (Sc.of_int (1 lsl i)) Ct.h) in
        prove_or g ~context:(string_of_int i) ~stmt0 ~stmt1 ~real:bit ~blind:blinds.(i))
  in
  { bit_commitments; proofs }

let verify ?(nbits = nbits_default) (commitment : Point.t) (p : t) : bool =
  Array.length p.bit_commitments = nbits
  && Array.length p.proofs = nbits
  && Point.equal commitment (Array.fold_left Point.add Point.identity p.bit_commitments)
  &&
  let ok = ref true in
  Array.iteri
    (fun i proof ->
      if !ok then begin
        let c_i = p.bit_commitments.(i) in
        let stmt0 = c_i in
        let stmt1 = Point.sub_point c_i (Point.mul (Sc.of_int (1 lsl i)) Ct.h) in
        ok := verify_or ~context:(string_of_int i) ~stmt0 ~stmt1 proof
      end)
    p.proofs;
  !ok

let size_bytes ?(nbits = nbits_default) () : int = nbits * (32 + (4 * 32))
