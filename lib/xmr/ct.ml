(** Confidential amounts (RingCT-style), the Monero feature the paper
    treats as orthogonal to MoNet (DESIGN.md §7) — implemented here as
    an extension so the fungibility story holds under hidden amounts
    too.

    An amount a with blinding b commits as C = a·H + b·G (Monero's
    convention). A transaction proves, without revealing any amount:

    - every output amount is in range (see {!Range_proof});
    - per input, a *pseudo-output* commitment carrying the same amount
      as the spent output with a fresh blinding — the MLSAG ring's
      second row proves C_spent − C_pseudo is a commitment to zero
      without identifying which ring member is spent;
    - balance: Σ pseudo-outs = Σ outs + fee·H, checked exactly because
      the pseudo-out blindings are chosen to telescope. *)

open Monet_ec

(* Monero's H: a second generator with unknown discrete log w.r.t. G. *)
let h : Point.t = Point.hash_to_point "ringct-h" "amount generator"

type commitment = Point.t

let commit ~(amount : int) ~(blind : Sc.t) : commitment =
  Point.double_mul (Sc.of_int amount) h blind

let commit_zero ~(blind : Sc.t) : commitment = Point.mul_base blind

(** C1 - C2 as a point (commitment to the amount difference). *)
let diff (c1 : commitment) (c2 : commitment) : Point.t = Point.sub_point c1 c2

let sum (cs : commitment list) : Point.t =
  List.fold_left Point.add Point.identity cs

(** Balance check: Σ pseudo-ins = Σ outs + fee·H. *)
let balances ~(pseudo_ins : commitment list) ~(outs : commitment list) ~(fee : int) :
    bool =
  Point.equal (sum pseudo_ins)
    (Point.add (sum outs) (Point.mul (Sc.of_int fee) h))

(** Pseudo-output blindings: all fresh except the last, which is chosen
    so the blindings telescope and the balance equation holds exactly
    over the group. Returns blinds such that
    Σ pseudo-blinds = Σ out-blinds. *)
let pseudo_blinds (g : Monet_hash.Drbg.t) ~(n_inputs : int) ~(out_blinds : Sc.t list)
    : Sc.t list =
  if n_inputs = 0 then invalid_arg "Ct.pseudo_blinds: no inputs";
  let out_total = List.fold_left Sc.add Sc.zero out_blinds in
  let fresh = List.init (n_inputs - 1) (fun _ -> Sc.random_nonzero g) in
  let fresh_total = List.fold_left Sc.add Sc.zero fresh in
  fresh @ [ Sc.sub out_total fresh_total ]
